// Package serving simulates the TFX serving integration of paper §5.3:
// trained discriminative models are exported to a portable artifact, staged
// into a versioned registry, validated (servable features only, latency
// within budget), and promoted to live serving. "Once trained, we use TFX to
// automatically stage it for serving."
package serving

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"sync"
	"time"

	"repro/internal/features"
	"repro/internal/model"
)

// Artifact is one exported model version.
type Artifact struct {
	// Name identifies the model line, e.g. "topic-classifier".
	Name string `json:"name"`
	// Version is assigned by the registry at staging time.
	Version int `json:"version"`
	// Kind is "logreg" or "dnn".
	Kind string `json:"kind"`
	// Threshold is the decision threshold tuned on the dev set.
	Threshold float64 `json:"threshold"`
	// FeatureDim is the expected input dimension.
	FeatureDim uint32 `json:"feature_dim"`
	// Bigrams records whether the feature extractor included bigrams, so an
	// online server can rebuild the exact featurizer from the artifact alone.
	Bigrams bool `json:"bigrams,omitempty"`
	// Signals names the feature signal families the model reads (e.g.
	// "text", "url"). Validation rejects artifacts whose signals are not
	// available at serving time — the cross-feature invariant of §4.
	Signals []string `json:"signals,omitempty"`
	// Payload is the kind-specific model encoding.
	Payload json.RawMessage `json:"payload"`
}

// servableSignals are the signal families available on the serving path
// (§4: text, URL, language, and real-time event vectors arrive with the
// request). Everything else — crawler aggregates, NER output, topic-model
// scores, knowledge-graph lookups — exists only on the labeling side.
var servableSignals = map[string]bool{
	"text":     true,
	"url":      true,
	"language": true,
	"event":    true,
}

// ServableSignals lists the signal families ValidateServable accepts,
// sorted.
func ServableSignals() []string {
	out := make([]string, 0, len(servableSignals))
	//drybellvet:ordered — collection only; sorted immediately below
	for s := range servableSignals {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// ValidateServable rejects artifacts that declare no feature signals or
// declare a signal family unavailable at serving time. It is the staging
// gate that keeps a model trained on labeling-side features (crawler stats,
// NER, the knowledge graph) out of the serving stack.
func ValidateServable(a *Artifact) error {
	if len(a.Signals) == 0 {
		return fmt.Errorf("serving: %s declares no feature signals; cannot verify servability", a.Name)
	}
	for _, s := range a.Signals {
		if !servableSignals[s] {
			return fmt.Errorf("serving: %s reads non-servable feature signal %q (servable: %v)",
				a.Name, s, ServableSignals())
		}
	}
	return nil
}

// logRegPayload is the sparse export of a trained logistic regression.
type logRegPayload struct {
	Indices []uint32  `json:"indices"`
	Values  []float64 `json:"values"`
}

// ExportLogReg converts a trained model into an artifact (unversioned until
// staged).
func ExportLogReg(name string, m *model.LogReg, threshold float64) (*Artifact, error) {
	w := m.Weights()
	var p logRegPayload
	for i, v := range w {
		if v != 0 {
			p.Indices = append(p.Indices, uint32(i))
			p.Values = append(p.Values, v)
		}
	}
	raw, err := json.Marshal(p)
	if err != nil {
		return nil, fmt.Errorf("serving: export %s: %w", name, err)
	}
	return &Artifact{
		Name: name, Kind: "logreg", Threshold: threshold,
		FeatureDim: m.Dim(), Payload: raw,
	}, nil
}

// Server scores servable feature vectors with a staged artifact.
type Server struct {
	art     *Artifact
	weights []float64
}

// NewServer loads an artifact for serving.
func NewServer(a *Artifact) (*Server, error) {
	if a.Kind != "logreg" {
		return nil, fmt.Errorf("serving: cannot serve kind %q in-process", a.Kind)
	}
	var p logRegPayload
	if err := json.Unmarshal(a.Payload, &p); err != nil {
		return nil, fmt.Errorf("serving: decode %s: %w", a.Name, err)
	}
	if len(p.Indices) != len(p.Values) {
		return nil, fmt.Errorf("serving: corrupt payload for %s", a.Name)
	}
	w := make([]float64, a.FeatureDim)
	for k, idx := range p.Indices {
		if idx >= a.FeatureDim {
			return nil, fmt.Errorf("serving: weight index %d out of dim %d", idx, a.FeatureDim)
		}
		w[idx] = p.Values[k]
	}
	return &Server{art: a, weights: w}, nil
}

// Score returns P(y=1|x).
func (s *Server) Score(x *features.SparseVector) float64 {
	return sigmoid(x.Dot(s.weights))
}

// Classify applies the artifact's tuned threshold.
func (s *Server) Classify(x *features.SparseVector) bool {
	return s.Score(x) >= s.art.Threshold
}

// ScoreBatch scores a micro-batch as one operation over the dense weight
// vector — the batched-inference entry point of the online serving path.
func (s *Server) ScoreBatch(xs []*features.SparseVector) []float64 {
	return s.ScoreBatchInto(xs, make([]float64, len(xs)))
}

// ScoreBatchInto is ScoreBatch writing into a caller-provided slice of
// len(xs); the serving hot path reuses per-worker buffers through it so
// steady-state scoring allocates nothing per batch.
func (s *Server) ScoreBatchInto(xs []*features.SparseVector, out []float64) []float64 {
	features.DotBatchInto(xs, s.weights, out)
	for i, v := range out {
		out[i] = sigmoid(v)
	}
	return out
}

// Artifact returns the served artifact.
func (s *Server) Artifact() *Artifact { return s.art }

func sigmoid(x float64) float64 {
	if x >= 0 {
		return 1 / (1 + math.Exp(-x))
	}
	e := math.Exp(x)
	return e / (1 + e)
}

// Catalog is the promotion-workflow surface of a versioned model store:
// Stage → Validate → Promote; Rollback restores the previous live version.
// Registry is the in-memory implementation; FSRegistry persists every
// transition to a dfs.FS so a serving daemon restart recovers the promoted
// version from filesystem state.
type Catalog interface {
	// Stage registers a new version of the artifact and returns it with the
	// version assigned. Staged versions are not served until promoted.
	Stage(a *Artifact) (*Artifact, error)
	// Promote makes the given staged version live.
	Promote(name string, version int) error
	// Rollback reverts to the previous version (live−1).
	Rollback(name string) error
	// Live returns the currently served artifact for the model line.
	Live(name string) (*Artifact, error)
	// Versions lists all staged versions of a model line, ascending.
	Versions(name string) []int
	// Names lists all model lines, sorted.
	Names() []string
}

// Registry is the in-memory Catalog. Safe for concurrent use.
type Registry struct {
	mu       sync.Mutex
	versions map[string][]*Artifact // guarded by mu; per name, ascending version
	live     map[string]int         // guarded by mu; live version per name
}

var _ Catalog = (*Registry)(nil)

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{versions: make(map[string][]*Artifact), live: make(map[string]int)}
}

// Stage registers a new version of the artifact and returns it with the
// version assigned. Staged versions are not served until promoted.
func (r *Registry) Stage(a *Artifact) (*Artifact, error) {
	if a.Name == "" {
		return nil, fmt.Errorf("serving: artifact has no name")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	cp := *a
	cp.Version = len(r.versions[a.Name]) + 1
	r.versions[a.Name] = append(r.versions[a.Name], &cp)
	return &cp, nil
}

// Promote makes the given staged version live.
func (r *Registry) Promote(name string, version int) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if version < 1 || version > len(r.versions[name]) {
		return fmt.Errorf("serving: %s has no version %d", name, version)
	}
	r.live[name] = version
	return nil
}

// Rollback reverts to the previous version (live−1).
func (r *Registry) Rollback(name string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	cur, ok := r.live[name]
	if !ok || cur <= 1 {
		return fmt.Errorf("serving: %s has no version to roll back to", name)
	}
	r.live[name] = cur - 1
	return nil
}

// Live returns the currently served artifact for the model line.
func (r *Registry) Live(name string) (*Artifact, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	v, ok := r.live[name]
	if !ok {
		return nil, fmt.Errorf("serving: %s has no live version", name)
	}
	return r.versions[name][v-1], nil
}

// Versions lists all staged versions of a model line, ascending.
func (r *Registry) Versions(name string) []int {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]int, len(r.versions[name]))
	for i := range out {
		out[i] = i + 1
	}
	return out
}

// Names lists all model lines, sorted.
func (r *Registry) Names() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, 0, len(r.versions))
	//drybellvet:ordered — collection only; sorted immediately below
	for n := range r.versions {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// ValidateLatency measures the artifact's p99-ish serving latency over probe
// inputs and rejects it if the budget is exceeded — the latency-agreement
// gate of §7 ("products are composed of many services that are connected
// via latency agreements").
func ValidateLatency(a *Artifact, probes []*features.SparseVector, budget time.Duration) error {
	srv, err := NewServer(a)
	if err != nil {
		return err
	}
	if len(probes) == 0 {
		return fmt.Errorf("serving: no probe inputs")
	}
	worst := time.Duration(0)
	for _, p := range probes {
		start := time.Now() //drybellvet:wallclock — the latency-gate measurement itself
		srv.Score(p)
		if d := time.Since(start); d > worst {
			worst = d
		}
	}
	if worst > budget {
		return fmt.Errorf("serving: %s worst probe latency %v exceeds budget %v", a.Name, worst, budget)
	}
	return nil
}
