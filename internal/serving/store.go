package serving

import (
	"encoding/json"
	"fmt"
	"path"
	"sort"
	"strconv"
	"strings"
	"sync"

	"repro/internal/dfs"
)

// FSRegistry is the Catalog backed by the distributed filesystem, so the
// registry outlives any one process: artifacts staged by a training run are
// visible to a serving daemon on the same FS, and a daemon restart recovers
// the promoted version from filesystem state alone.
//
// Layout under the prefix:
//
//	<prefix>/models/<name>/v000042.json   one staged artifact version
//	<prefix>/models/<name>/live           decimal live version marker
//
// Every read goes to the FS, so registries in different processes sharing
// one FS observe each other's stages and promotions. The mutex serializes
// only this process's stage operations (list-then-write); cross-process
// writers racing Stage can collide on a version number, which mirrors real
// registries requiring one staging pipeline per model line.
type FSRegistry struct {
	fs     dfs.FS
	prefix string
	mu     sync.Mutex
}

var _ Catalog = (*FSRegistry)(nil)

// OpenFSRegistry returns a registry persisting under prefix on fs. The
// prefix need not exist yet; an empty prefix uses "serving".
func OpenFSRegistry(fs dfs.FS, prefix string) (*FSRegistry, error) {
	if fs == nil {
		return nil, fmt.Errorf("serving: OpenFSRegistry(nil fs)")
	}
	if prefix == "" {
		prefix = "serving"
	}
	return &FSRegistry{fs: fs, prefix: prefix}, nil
}

func (r *FSRegistry) modelDir(name string) string {
	return path.Join(r.prefix, "models", name)
}

func (r *FSRegistry) versionPath(name string, version int) string {
	return fmt.Sprintf("%s/v%06d.json", r.modelDir(name), version)
}

func (r *FSRegistry) livePath(name string) string {
	return path.Join(r.modelDir(name), "live")
}

// Stage implements Catalog.
func (r *FSRegistry) Stage(a *Artifact) (*Artifact, error) {
	if a.Name == "" {
		return nil, fmt.Errorf("serving: artifact has no name")
	}
	if strings.ContainsAny(a.Name, "/ ") {
		return nil, fmt.Errorf("serving: artifact name %q is not a valid registry path segment", a.Name)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	versions := r.versions(a.Name)
	next := 1
	if len(versions) > 0 {
		next = versions[len(versions)-1] + 1
	}
	cp := *a
	cp.Version = next
	data, err := json.Marshal(&cp)
	if err != nil {
		return nil, fmt.Errorf("serving: encode %s v%d: %w", a.Name, next, err)
	}
	if err := r.fs.WriteFile(r.versionPath(a.Name, next), data); err != nil {
		return nil, fmt.Errorf("serving: stage %s v%d: %w", a.Name, next, err)
	}
	return &cp, nil
}

// Promote implements Catalog. Only a staged version can go live.
func (r *FSRegistry) Promote(name string, version int) error {
	if _, err := r.artifact(name, version); err != nil {
		return fmt.Errorf("serving: %s has no staged version %d", name, version)
	}
	return r.setLive(name, version)
}

func (r *FSRegistry) setLive(name string, version int) error {
	if err := r.fs.WriteFile(r.livePath(name), []byte(strconv.Itoa(version))); err != nil {
		return fmt.Errorf("serving: mark %s v%d live: %w", name, version, err)
	}
	return nil
}

// Rollback implements Catalog.
func (r *FSRegistry) Rollback(name string) error {
	cur, err := r.liveVersion(name)
	if err != nil || cur <= 1 {
		return fmt.Errorf("serving: %s has no version to roll back to", name)
	}
	if _, err := r.artifact(name, cur-1); err != nil {
		return fmt.Errorf("serving: rollback target %s v%d is not staged", name, cur-1)
	}
	return r.setLive(name, cur-1)
}

// Live implements Catalog.
func (r *FSRegistry) Live(name string) (*Artifact, error) {
	v, err := r.liveVersion(name)
	if err != nil {
		return nil, fmt.Errorf("serving: %s has no live version", name)
	}
	return r.artifact(name, v)
}

func (r *FSRegistry) liveVersion(name string) (int, error) {
	data, err := r.fs.ReadFile(r.livePath(name))
	if err != nil {
		return 0, err
	}
	v, err := strconv.Atoi(strings.TrimSpace(string(data)))
	if err != nil || v < 1 {
		return 0, fmt.Errorf("serving: corrupt live marker for %s: %q", name, data)
	}
	return v, nil
}

func (r *FSRegistry) artifact(name string, version int) (*Artifact, error) {
	data, err := r.fs.ReadFile(r.versionPath(name, version))
	if err != nil {
		return nil, err
	}
	var a Artifact
	if err := json.Unmarshal(data, &a); err != nil {
		return nil, fmt.Errorf("serving: decode %s v%d: %w", name, version, err)
	}
	return &a, nil
}

// versions lists staged version numbers, ascending.
func (r *FSRegistry) versions(name string) []int {
	paths, err := r.fs.List(r.modelDir(name) + "/v") //drybellvet:notapath — List prefix ending mid-filename ("…/v"), not a key
	if err != nil {
		return nil
	}
	var out []int
	for _, p := range paths {
		base := p[strings.LastIndexByte(p, '/')+1:]
		if !strings.HasPrefix(base, "v") || !strings.HasSuffix(base, ".json") {
			continue
		}
		v, err := strconv.Atoi(strings.TrimPrefix(strings.TrimSuffix(base, ".json"), "v"))
		if err != nil || v < 1 {
			continue
		}
		out = append(out, v)
	}
	sort.Ints(out)
	return out
}

// Versions implements Catalog.
func (r *FSRegistry) Versions(name string) []int { return r.versions(name) }

// Names implements Catalog.
func (r *FSRegistry) Names() []string {
	prefix := r.prefix + "/models/" //drybellvet:notapath — List prefix; the trailing slash is significant
	paths, err := r.fs.List(prefix)
	if err != nil {
		return nil
	}
	seen := map[string]bool{}
	var out []string
	for _, p := range paths {
		rest := strings.TrimPrefix(p, prefix)
		i := strings.IndexByte(rest, '/')
		if i <= 0 {
			continue
		}
		name := rest[:i]
		if !seen[name] {
			seen[name] = true
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}
