package model

import (
	"fmt"
	"math"
)

// Metrics holds binary-classification quality at a fixed threshold.
type Metrics struct {
	Precision, Recall, F1 float64
	TP, FP, TN, FN        int
}

// Evaluate computes precision/recall/F1 of scores against ±1 gold labels at
// the given threshold (the paper uses 0.5).
func Evaluate(scores []float64, gold []int, threshold float64) (Metrics, error) {
	if len(scores) != len(gold) {
		return Metrics{}, fmt.Errorf("model: %d scores, %d labels", len(scores), len(gold))
	}
	var m Metrics
	for i, s := range scores {
		pred := s >= threshold
		pos := gold[i] > 0
		switch {
		case pred && pos:
			m.TP++
		case pred && !pos:
			m.FP++
		case !pred && pos:
			m.FN++
		default:
			m.TN++
		}
	}
	if m.TP+m.FP > 0 {
		m.Precision = float64(m.TP) / float64(m.TP+m.FP)
	}
	if m.TP+m.FN > 0 {
		m.Recall = float64(m.TP) / float64(m.TP+m.FN)
	}
	if m.Precision+m.Recall > 0 {
		m.F1 = 2 * m.Precision * m.Recall / (m.Precision + m.Recall)
	}
	return m, nil
}

// Relative expresses this measurement relative to a baseline, the way every
// number in the paper's Tables 2-4 is reported ("scores are normalized
// relative to the precision, recall, and F1 scores of these baselines").
type Relative struct {
	Precision, Recall, F1 float64 // ratios; 1.0 = parity with baseline
	Lift                  float64 // F1 − 1.0
}

// RelativeTo normalizes m against base.
func (m Metrics) RelativeTo(base Metrics) Relative {
	r := Relative{}
	if base.Precision > 0 {
		r.Precision = m.Precision / base.Precision
	}
	if base.Recall > 0 {
		r.Recall = m.Recall / base.Recall
	}
	if base.F1 > 0 {
		r.F1 = m.F1 / base.F1
	}
	r.Lift = r.F1 - 1
	return r
}

// BestF1Threshold sweeps thresholds over the observed scores and returns the
// threshold maximizing F1 with the metrics there. The paper tunes for F1
// ("optimizing for F1 score") on the dev set.
func BestF1Threshold(scores []float64, gold []int) (float64, Metrics, error) {
	if len(scores) != len(gold) || len(scores) == 0 {
		return 0, Metrics{}, fmt.Errorf("model: bad sweep input (%d scores, %d labels)", len(scores), len(gold))
	}
	bestT, bestM := 0.5, Metrics{}
	for _, t := range thresholdGrid() {
		m, err := Evaluate(scores, gold, t)
		if err != nil {
			return 0, Metrics{}, err
		}
		if m.F1 > bestM.F1 {
			bestT, bestM = t, m
		}
	}
	return bestT, bestM, nil
}

func thresholdGrid() []float64 {
	out := make([]float64, 0, 99)
	for t := 0.01; t < 1.0; t += 0.01 {
		out = append(out, t)
	}
	return out
}

// Histogram bins scores into equal-width buckets over [0,1], the Figure 6
// visualization comparing Logical-OR training to DryBell training.
type Histogram struct {
	// Counts[b] is the number of scores in [b/len, (b+1)/len).
	Counts []int
	Total  int
}

// NewHistogram bins scores into the given number of buckets.
func NewHistogram(scores []float64, buckets int) *Histogram {
	h := &Histogram{Counts: make([]int, buckets), Total: len(scores)}
	for _, s := range scores {
		b := int(s * float64(buckets))
		if b >= buckets {
			b = buckets - 1
		}
		if b < 0 {
			b = 0
		}
		h.Counts[b]++
	}
	return h
}

// MassAtExtremes returns the fraction of scores in the lowest and highest
// buckets — the Figure 6 statistic (Logical-OR piles mass at the extremes;
// DryBell spreads it).
func (h *Histogram) MassAtExtremes() float64 {
	if h.Total == 0 {
		return 0
	}
	return float64(h.Counts[0]+h.Counts[len(h.Counts)-1]) / float64(h.Total)
}

// Entropy returns the Shannon entropy (nats) of the bucket distribution; a
// smoother distribution has higher entropy.
func (h *Histogram) Entropy() float64 {
	if h.Total == 0 {
		return 0
	}
	e := 0.0
	for _, c := range h.Counts {
		if c == 0 {
			continue
		}
		p := float64(c) / float64(h.Total)
		e -= p * math.Log(p)
	}
	return e
}

// Brier returns the Brier score (mean squared error of probabilities
// against {0,1} outcomes); lower is better calibrated.
func Brier(scores []float64, gold []int) (float64, error) {
	if len(scores) != len(gold) || len(scores) == 0 {
		return 0, fmt.Errorf("model: bad Brier input")
	}
	s := 0.0
	for i, p := range scores {
		y := 0.0
		if gold[i] > 0 {
			y = 1
		}
		s += (p - y) * (p - y)
	}
	return s / float64(len(scores)), nil
}

// PRPoint is one precision/recall point of a PR curve.
type PRPoint struct {
	Threshold, Precision, Recall float64
}

// PRCurve evaluates the precision/recall trade-off on a threshold grid.
func PRCurve(scores []float64, gold []int) ([]PRPoint, error) {
	var out []PRPoint
	for _, t := range thresholdGrid() {
		m, err := Evaluate(scores, gold, t)
		if err != nil {
			return nil, err
		}
		out = append(out, PRPoint{Threshold: t, Precision: m.Precision, Recall: m.Recall})
	}
	return out, nil
}
