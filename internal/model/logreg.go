// Package model implements the servable discriminative models Snorkel
// DryBell trains on probabilistic labels (paper §5.3, §6.1): a sparse
// logistic regression optimized with FTRL-Proximal (the paper's "FTLR"
// optimizer from McMahan et al.) and a deep neural network built on the
// tensor graph, both minimizing the noise-aware expected loss
//
//	θ̂ = argmin_θ Σ_i E_{y~Ỹ_i}[ l(h_θ(x_i), y) ]
//
// which for the logistic loss reduces to cross-entropy against the soft
// label Ỹ_i ∈ [0,1].
package model

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/features"
)

// FTRLConfig configures the FTRL-Proximal optimizer.
type FTRLConfig struct {
	// Alpha is the per-coordinate learning-rate scale. The paper trains with
	// an initial step size of 0.2.
	Alpha float64
	// Beta is the learning-rate smoothing term (1.0 is standard).
	Beta float64
	// L1 is the sparsity-inducing penalty; coordinates whose accumulated
	// gradient stays under it remain exactly zero.
	L1 float64
	// L2 is the ridge penalty.
	L2 float64
}

// DefaultFTRL mirrors the paper's settings (initial step size 0.2) with
// mild regularization.
func DefaultFTRL() FTRLConfig {
	return FTRLConfig{Alpha: 0.2, Beta: 1, L1: 1e-6, L2: 1e-6}
}

// LogReg is a binary logistic-regression model over hashed sparse features,
// trained with FTRL-Proximal and a noise-aware loss. The zero value is not
// usable; construct with NewLogReg.
type LogReg struct {
	cfg FTRLConfig
	dim uint32

	// FTRL state per coordinate.
	z, n    []float64
	weights []float64 // materialized lazily from z/n
	dirty   bool
}

// NewLogReg returns an untrained model over a feature space of size dim.
func NewLogReg(dim uint32, cfg FTRLConfig) (*LogReg, error) {
	if dim == 0 {
		return nil, fmt.Errorf("model: zero feature dimension")
	}
	if cfg.Alpha <= 0 {
		return nil, fmt.Errorf("model: FTRL alpha must be positive, got %v", cfg.Alpha)
	}
	if cfg.Beta <= 0 {
		cfg.Beta = 1
	}
	return &LogReg{
		cfg: cfg, dim: dim,
		z: make([]float64, dim), n: make([]float64, dim),
		weights: make([]float64, dim), dirty: true,
	}, nil
}

// Dim returns the feature-space size.
func (m *LogReg) Dim() uint32 { return m.dim }

// weight materializes the FTRL weight for one coordinate.
func (m *LogReg) weight(i uint32) float64 {
	zi := m.z[i]
	if math.Abs(zi) <= m.cfg.L1 {
		return 0
	}
	sign := 1.0
	if zi < 0 {
		sign = -1
	}
	return -(zi - sign*m.cfg.L1) / ((m.cfg.Beta+math.Sqrt(m.n[i]))/m.cfg.Alpha + m.cfg.L2)
}

// Predict returns P(y=1|x).
func (m *LogReg) Predict(x *features.SparseVector) float64 {
	s := 0.0
	for k, idx := range x.Indices {
		s += m.weight(idx) * x.Values[k]
	}
	return sigmoid(s)
}

// Update performs one FTRL step on example x with soft label y ∈ [0,1].
// The noise-aware gradient is (p − y)·x.
func (m *LogReg) Update(x *features.SparseVector, y float64) {
	if y < 0 || y > 1 {
		panic(fmt.Sprintf("model: soft label %v out of [0,1]", y))
	}
	p := m.Predict(x)
	g := p - y
	for k, idx := range x.Indices {
		gi := g * x.Values[k]
		sigma := (math.Sqrt(m.n[idx]+gi*gi) - math.Sqrt(m.n[idx])) / m.cfg.Alpha
		m.z[idx] += gi - sigma*m.weight(idx)
		m.n[idx] += gi * gi
	}
	m.dirty = true
}

// TrainConfig configures a training run.
type TrainConfig struct {
	// Iterations is the number of SGD steps; each step consumes one example
	// drawn uniformly (paper: 10K for topic, 100K for product; batch size 64
	// there refers to the label-model side — FTRL is per-example).
	Iterations int
	// Seed drives example sampling.
	Seed int64
}

// Train runs FTRL over (xs, soft labels) for cfg.Iterations steps.
func (m *LogReg) Train(xs []*features.SparseVector, ys []float64, cfg TrainConfig) error {
	if len(xs) != len(ys) {
		return fmt.Errorf("model: %d examples, %d labels", len(xs), len(ys))
	}
	if len(xs) == 0 {
		return fmt.Errorf("model: empty training set")
	}
	if cfg.Iterations <= 0 {
		cfg.Iterations = 10000
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	for it := 0; it < cfg.Iterations; it++ {
		i := rng.Intn(len(xs))
		m.Update(xs[i], ys[i])
	}
	return nil
}

// PredictAll scores a batch. Unlike per-example Predict, it materializes the
// FTRL weights once and scores every vector against the dense weight vector
// (in parallel across GOMAXPROCS workers for large batches), so batch
// inference does not redo the per-coordinate weight closed form for every
// lookup.
func (m *LogReg) PredictAll(xs []*features.SparseVector) []float64 {
	return m.PredictAllInto(xs, make([]float64, len(xs)))
}

// PredictAllInto is PredictAll writing into a caller-provided slice of
// len(xs), the allocation-free form for continuous batch scoring.
func (m *LogReg) PredictAllInto(xs []*features.SparseVector, out []float64) []float64 {
	m.materialize()
	features.DotBatchInto(xs, m.weights, out)
	for i, s := range out {
		out[i] = sigmoid(s)
	}
	return out
}

// NonZeroWeights counts coordinates with nonzero weight — FTRL's L1 keeps
// this far below dim, which is what makes the model cheap to serve.
func (m *LogReg) NonZeroWeights() int {
	count := 0
	for i := uint32(0); i < m.dim; i++ {
		if m.weight(i) != 0 {
			count++
		}
	}
	return count
}

// materialize refreshes the dense weight vector from the FTRL state.
func (m *LogReg) materialize() {
	if m.dirty {
		for i := uint32(0); i < m.dim; i++ {
			m.weights[i] = m.weight(i)
		}
		m.dirty = false
	}
}

// Weights materializes the dense weight vector (for export/serving).
func (m *LogReg) Weights() []float64 {
	m.materialize()
	out := make([]float64, m.dim)
	copy(out, m.weights)
	return out
}

func sigmoid(x float64) float64 {
	if x >= 0 {
		return 1 / (1 + math.Exp(-x))
	}
	e := math.Exp(x)
	return e / (1 + e)
}
