package model

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/features"
)

// synthetic linearly separable-ish sparse problem.
func sparseProblem(n int, seed int64) ([]*features.SparseVector, []float64, []int) {
	rng := rand.New(rand.NewSource(seed))
	xs := make([]*features.SparseVector, n)
	soft := make([]float64, n)
	gold := make([]int, n)
	for i := range xs {
		pos := rng.Float64() < 0.5
		var idx []uint32
		if pos {
			idx = []uint32{0, uint32(2 + rng.Intn(3))}
			gold[i] = 1
			soft[i] = 0.8 + rng.Float64()*0.2
		} else {
			idx = []uint32{1, uint32(5 + rng.Intn(3))}
			gold[i] = -1
			soft[i] = rng.Float64() * 0.2
		}
		vals := make([]float64, len(idx))
		for k := range vals {
			vals[k] = 1
		}
		xs[i] = &features.SparseVector{Indices: idx, Values: vals}
	}
	return xs, soft, gold
}

func TestLogRegValidation(t *testing.T) {
	if _, err := NewLogReg(0, DefaultFTRL()); err == nil {
		t.Error("dim 0 accepted")
	}
	if _, err := NewLogReg(8, FTRLConfig{Alpha: 0}); err == nil {
		t.Error("alpha 0 accepted")
	}
	m, _ := NewLogReg(8, DefaultFTRL())
	if err := m.Train(nil, nil, TrainConfig{}); err == nil {
		t.Error("empty training set accepted")
	}
	if err := m.Train(make([]*features.SparseVector, 1), make([]float64, 2), TrainConfig{}); err == nil {
		t.Error("length mismatch accepted")
	}
}

func TestLogRegLearnsSeparableProblem(t *testing.T) {
	xs, soft, gold := sparseProblem(2000, 3)
	m, err := NewLogReg(16, DefaultFTRL())
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Train(xs, soft, TrainConfig{Iterations: 20000, Seed: 1}); err != nil {
		t.Fatal(err)
	}
	met, err := Evaluate(m.PredictAll(xs), gold, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if met.F1 < 0.98 {
		t.Errorf("F1 = %v on separable problem, want ≥ 0.98", met.F1)
	}
}

func TestLogRegSoftLabelPanics(t *testing.T) {
	m, _ := NewLogReg(8, DefaultFTRL())
	defer func() {
		if recover() == nil {
			t.Fatal("label 1.5 accepted")
		}
	}()
	m.Update(&features.SparseVector{Indices: []uint32{0}, Values: []float64{1}}, 1.5)
}

func TestFTRLSparsity(t *testing.T) {
	// With strong L1, untouched and weak coordinates stay exactly zero.
	xs, soft, _ := sparseProblem(500, 7)
	cfg := DefaultFTRL()
	cfg.L1 = 0.5
	m, _ := NewLogReg(1<<12, cfg)
	if err := m.Train(xs, soft, TrainConfig{Iterations: 5000, Seed: 2}); err != nil {
		t.Fatal(err)
	}
	nz := m.NonZeroWeights()
	if nz > 16 {
		t.Errorf("nonzero weights = %d, want small (L1 sparsity)", nz)
	}
	if nz == 0 {
		t.Error("all weights zero — model learned nothing")
	}
}

// Property: noise-aware training with soft labels ≈ training with the label
// probabilities' expectations; untrained model predicts 0.5.
func TestLogRegUntrainedPredictsHalf(t *testing.T) {
	m, _ := NewLogReg(8, DefaultFTRL())
	p := m.Predict(&features.SparseVector{Indices: []uint32{3}, Values: []float64{1}})
	if p != 0.5 {
		t.Errorf("untrained prediction = %v, want 0.5", p)
	}
}

func TestLogRegWeightsExport(t *testing.T) {
	xs, soft, _ := sparseProblem(200, 5)
	m, _ := NewLogReg(16, DefaultFTRL())
	if err := m.Train(xs, soft, TrainConfig{Iterations: 2000, Seed: 3}); err != nil {
		t.Fatal(err)
	}
	w := m.Weights()
	if len(w) != 16 {
		t.Fatalf("weights len = %d", len(w))
	}
	// Manual dot must reproduce Predict.
	x := xs[0]
	s := x.Dot(w)
	want := m.Predict(x)
	if math.Abs(sigmoid(s)-want) > 1e-12 {
		t.Errorf("exported weights disagree with Predict: %v vs %v", sigmoid(s), want)
	}
}

func TestMLPValidation(t *testing.T) {
	if _, err := NewMLP(0, nil, 1); err == nil {
		t.Error("input dim 0 accepted")
	}
	if _, err := NewMLP(4, []int{0}, 1); err == nil {
		t.Error("hidden 0 accepted")
	}
	m, _ := NewMLP(4, []int{8}, 1)
	if err := m.Train(nil, nil, MLPTrainConfig{}); err == nil {
		t.Error("empty training accepted")
	}
	if err := m.Train([][]float64{{1, 2}}, []float64{1}, MLPTrainConfig{}); err == nil {
		t.Error("wrong dim accepted")
	}
}

func TestMLPLearnsNonlinearProblem(t *testing.T) {
	// XOR-ish: y = 1 iff x0 and x1 have the same sign. Linear models fail.
	rng := rand.New(rand.NewSource(4))
	n := 2000
	xs := make([][]float64, n)
	ys := make([]float64, n)
	gold := make([]int, n)
	for i := range xs {
		a, b := rng.NormFloat64(), rng.NormFloat64()
		xs[i] = []float64{a, b}
		if a*b > 0 {
			ys[i], gold[i] = 1, 1
		} else {
			ys[i], gold[i] = 0, -1
		}
	}
	m, err := NewMLP(2, []int{16, 8}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Train(xs, ys, MLPTrainConfig{Epochs: 30, BatchSize: 32, LR: 0.01, Seed: 2}); err != nil {
		t.Fatal(err)
	}
	preds, err := m.Predict(xs)
	if err != nil {
		t.Fatal(err)
	}
	met, _ := Evaluate(preds, gold, 0.5)
	if met.F1 < 0.9 {
		t.Errorf("MLP F1 on XOR = %v, want ≥ 0.9", met.F1)
	}
}

func TestMLPSoftLabelsShapeOutput(t *testing.T) {
	// Trained on uniformly 0.5 labels, predictions should hover near 0.5 —
	// the noise-aware loss preserves calibration instead of saturating.
	rng := rand.New(rand.NewSource(9))
	n := 500
	xs := make([][]float64, n)
	ys := make([]float64, n)
	for i := range xs {
		xs[i] = []float64{rng.NormFloat64()}
		ys[i] = 0.5
	}
	m, _ := NewMLP(1, []int{4}, 3)
	if err := m.Train(xs, ys, MLPTrainConfig{Epochs: 10, Seed: 1}); err != nil {
		t.Fatal(err)
	}
	preds, _ := m.Predict(xs)
	for _, p := range preds {
		if p < 0.3 || p > 0.7 {
			t.Fatalf("prediction %v saturated despite 0.5 labels", p)
		}
	}
}

func TestMLPPredictEmpty(t *testing.T) {
	m, _ := NewMLP(2, []int{4}, 1)
	out, err := m.Predict(nil)
	if err != nil || out != nil {
		t.Errorf("Predict(nil) = %v, %v", out, err)
	}
}

func TestEvaluateKnownCounts(t *testing.T) {
	scores := []float64{0.9, 0.8, 0.4, 0.1}
	gold := []int{1, -1, 1, -1}
	m, err := Evaluate(scores, gold, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if m.TP != 1 || m.FP != 1 || m.FN != 1 || m.TN != 1 {
		t.Errorf("confusion = %+v", m)
	}
	if m.Precision != 0.5 || m.Recall != 0.5 || m.F1 != 0.5 {
		t.Errorf("PRF = %v/%v/%v", m.Precision, m.Recall, m.F1)
	}
}

func TestEvaluateMismatch(t *testing.T) {
	if _, err := Evaluate([]float64{1}, []int{1, -1}, 0.5); err == nil {
		t.Error("length mismatch accepted")
	}
}

func TestRelativeTo(t *testing.T) {
	base := Metrics{Precision: 0.5, Recall: 0.4, F1: 0.44}
	m := Metrics{Precision: 0.55, Recall: 0.5, F1: 0.52}
	r := m.RelativeTo(base)
	if math.Abs(r.Precision-1.1) > 1e-9 || math.Abs(r.Recall-1.25) > 1e-9 {
		t.Errorf("relative = %+v", r)
	}
	if math.Abs(r.Lift-(0.52/0.44-1)) > 1e-9 {
		t.Errorf("lift = %v", r.Lift)
	}
	// Zero baseline yields zero ratios, not Inf.
	r2 := m.RelativeTo(Metrics{})
	if r2.Precision != 0 || r2.F1 != 0 {
		t.Errorf("zero baseline: %+v", r2)
	}
}

func TestBestF1Threshold(t *testing.T) {
	// Scores where threshold 0.5 is suboptimal: positives clustered at 0.3+.
	scores := []float64{0.35, 0.4, 0.45, 0.1, 0.15, 0.2}
	gold := []int{1, 1, 1, -1, -1, -1}
	th, m, err := BestF1Threshold(scores, gold)
	if err != nil {
		t.Fatal(err)
	}
	if m.F1 != 1 {
		t.Errorf("best F1 = %v, want 1", m.F1)
	}
	if th <= 0.2 || th > 0.35 {
		t.Errorf("best threshold = %v, want in (0.2, 0.35]", th)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram([]float64{0, 0.05, 0.5, 0.95, 1.0}, 10)
	if h.Counts[0] != 2 || h.Counts[9] != 2 || h.Counts[5] != 1 {
		t.Errorf("counts = %v", h.Counts)
	}
	if got := h.MassAtExtremes(); math.Abs(got-0.8) > 1e-9 {
		t.Errorf("MassAtExtremes = %v", got)
	}
	if NewHistogram(nil, 4).MassAtExtremes() != 0 {
		t.Error("empty histogram extremes should be 0")
	}
}

func TestHistogramEntropy(t *testing.T) {
	flat := NewHistogram([]float64{0.05, 0.15, 0.25, 0.35, 0.45, 0.55, 0.65, 0.75, 0.85, 0.95}, 10)
	spiky := NewHistogram([]float64{0.01, 0.02, 0.03, 0.99, 0.98, 0.97, 0.96, 0.95, 0.99, 0.01}, 10)
	if flat.Entropy() <= spiky.Entropy() {
		t.Errorf("flat entropy %v should exceed spiky %v", flat.Entropy(), spiky.Entropy())
	}
}

func TestBrier(t *testing.T) {
	b, err := Brier([]float64{1, 0}, []int{1, -1})
	if err != nil || b != 0 {
		t.Errorf("perfect Brier = %v, %v", b, err)
	}
	b, _ = Brier([]float64{0, 1}, []int{1, -1})
	if b != 1 {
		t.Errorf("worst Brier = %v", b)
	}
	if _, err := Brier(nil, nil); err == nil {
		t.Error("empty Brier accepted")
	}
}

func TestPRCurveMonotoneRecall(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	scores := make([]float64, 500)
	gold := make([]int, 500)
	for i := range scores {
		if rng.Float64() < 0.3 {
			gold[i] = 1
			scores[i] = 0.4 + rng.Float64()*0.6
		} else {
			gold[i] = -1
			scores[i] = rng.Float64() * 0.7
		}
	}
	curve, err := PRCurve(scores, gold)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i+1 < len(curve); i++ {
		if curve[i+1].Recall > curve[i].Recall+1e-12 {
			t.Fatal("recall must be non-increasing in threshold")
		}
	}
}

// Property: Evaluate counts always partition the dataset.
func TestEvaluatePartitionProperty(t *testing.T) {
	f := func(raw []bool, seed int64) bool {
		if len(raw) == 0 {
			return true
		}
		rng := rand.New(rand.NewSource(seed))
		scores := make([]float64, len(raw))
		gold := make([]int, len(raw))
		for i, pos := range raw {
			scores[i] = rng.Float64()
			if pos {
				gold[i] = 1
			} else {
				gold[i] = -1
			}
		}
		m, err := Evaluate(scores, gold, 0.5)
		if err != nil {
			return false
		}
		return m.TP+m.FP+m.TN+m.FN == len(raw)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
