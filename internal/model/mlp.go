package model

import (
	"fmt"
	"math/rand"

	"repro/internal/tensor"
)

// MLP is the deep neural network used for the real-time events task (§3.3,
// §6.4): dense layers with tanh activations and a sigmoid output, trained on
// probabilistic labels with the noise-aware cross-entropy
//
//	l(z, ỹ) = softplus(z) − ỹ·z   (expected CE under the soft label)
//
// built on the internal/tensor graph, as the production model is built on
// TensorFlow via TFX.
type MLP struct {
	g      *tensor.Graph
	input  *tensor.Node // (batch, in)
	target *tensor.Node // (batch,)
	logits *tensor.Node // (batch,)
	probs  *tensor.Node // (batch,)
	loss   *tensor.Node

	inDim  int
	hidden []int
}

// NewMLP builds an MLP with the given input dimension and hidden layer
// sizes (e.g. NewMLP(16, []int{32, 16}, 1)).
func NewMLP(inDim int, hidden []int, seed int64) (*MLP, error) {
	if inDim <= 0 {
		return nil, fmt.Errorf("model: MLP input dim %d", inDim)
	}
	for _, h := range hidden {
		if h <= 0 {
			return nil, fmt.Errorf("model: MLP hidden size %d", h)
		}
	}
	rng := rand.New(rand.NewSource(seed))
	g := tensor.NewGraph()
	input := g.Placeholder("x")
	target := g.Placeholder("y")

	cur := input
	curDim := inDim
	for li, h := range hidden {
		w := g.Variable(fmt.Sprintf("w%d", li), tensor.Randn(rng, 1/sqrtf(curDim), curDim, h))
		b := g.Variable(fmt.Sprintf("b%d", li), tensor.New(h))
		cur = g.Tanh(g.Add(g.MatMul(cur, w), b))
		curDim = h
	}
	wOut := g.Variable("w_out", tensor.Randn(rng, 1/sqrtf(curDim), curDim, 1))
	bOut := g.Variable("b_out", tensor.New(1))
	logits2d := g.Add(g.MatMul(cur, wOut), bOut) // (batch, 1)
	logits := g.SumAxis(logits2d, 1)             // (batch,)
	probs := g.Sigmoid(logits)

	// Noise-aware CE: mean(softplus(z) − y·z).
	loss := g.Mean(g.Sub(g.Softplus(logits), g.Mul(target, logits)))

	return &MLP{
		g: g, input: input, target: target,
		logits: logits, probs: probs, loss: loss,
		inDim: inDim, hidden: append([]int(nil), hidden...),
	}, nil
}

// MLPTrainConfig configures MLP training.
type MLPTrainConfig struct {
	// Epochs over the training set. Default 5.
	Epochs int
	// BatchSize per gradient step. Default 64.
	BatchSize int
	// LR is the Adam step size. Default 0.005.
	LR float64
	// Seed drives shuffling.
	Seed int64
}

func (c MLPTrainConfig) withDefaults() MLPTrainConfig {
	if c.Epochs <= 0 {
		c.Epochs = 5
	}
	if c.BatchSize <= 0 {
		c.BatchSize = 64
	}
	if c.LR <= 0 {
		c.LR = 0.005
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// Train fits the network to (xs, soft labels ys).
func (m *MLP) Train(xs [][]float64, ys []float64, cfg MLPTrainConfig) error {
	if len(xs) != len(ys) {
		return fmt.Errorf("model: %d examples, %d labels", len(xs), len(ys))
	}
	if len(xs) == 0 {
		return fmt.Errorf("model: empty training set")
	}
	for i, x := range xs {
		if len(x) != m.inDim {
			return fmt.Errorf("model: example %d has dim %d, want %d", i, len(x), m.inDim)
		}
	}
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	opt := &tensor.GradClip{MaxNorm: 5, Inner: &tensor.Adam{LR: cfg.LR}}

	order := rng.Perm(len(xs))
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		rng.Shuffle(len(order), func(a, b int) { order[a], order[b] = order[b], order[a] })
		for start := 0; start < len(order); start += cfg.BatchSize {
			end := start + cfg.BatchSize
			if end > len(order) {
				end = len(order)
			}
			batch := order[start:end]
			xb := tensor.New(len(batch), m.inDim)
			yb := tensor.New(len(batch))
			for k, i := range batch {
				for f, v := range xs[i] {
					xb.Set(v, k, f)
				}
				yb.Set(ys[i], k)
			}
			if _, err := m.g.Minimize(m.loss, opt,
				tensor.Feed{Node: m.input, Value: xb},
				tensor.Feed{Node: m.target, Value: yb},
			); err != nil {
				return fmt.Errorf("model: MLP step: %w", err)
			}
		}
	}
	return nil
}

// Predict returns P(y=1|x) for a batch.
func (m *MLP) Predict(xs [][]float64) ([]float64, error) {
	if len(xs) == 0 {
		return nil, nil
	}
	xb := tensor.New(len(xs), m.inDim)
	for k, x := range xs {
		if len(x) != m.inDim {
			return nil, fmt.Errorf("model: example %d has dim %d, want %d", k, len(x), m.inDim)
		}
		for f, v := range x {
			xb.Set(v, k, f)
		}
	}
	// Feed a dummy target so the full graph can evaluate.
	if err := m.g.Run(
		tensor.Feed{Node: m.input, Value: xb},
		tensor.Feed{Node: m.target, Value: tensor.New(len(xs))},
	); err != nil {
		return nil, err
	}
	out := make([]float64, len(xs))
	copy(out, m.probs.Value().Data())
	return out, nil
}

func sqrtf(n int) float64 {
	x := float64(n)
	z := x
	for i := 0; i < 32; i++ {
		z = 0.5 * (z + x/z)
	}
	return z
}
