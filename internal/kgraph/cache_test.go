package kgraph

import (
	"sync"
	"testing"
)

// countingClient wraps a Graph and counts calls that reach it.
type countingClient struct {
	g          *Graph
	mu         sync.Mutex
	occCalls   int
	transCalls int
}

func (c *countingClient) Occupation(name string) string {
	c.mu.Lock()
	c.occCalls++
	c.mu.Unlock()
	return c.g.Occupation(name)
}

func (c *countingClient) Translate(kw, lang string) (string, bool) {
	c.mu.Lock()
	c.transCalls++
	c.mu.Unlock()
	return c.g.Translate(kw, lang)
}

func TestCacheMemoizesOccupation(t *testing.T) {
	inner := &countingClient{g: Builtin()}
	c, err := NewCache(inner, 8)
	if err != nil {
		t.Fatal(err)
	}
	name := "Ava Stone"
	want := inner.g.Occupation(name)
	for i := 0; i < 5; i++ {
		if got := c.Occupation(name); got != want {
			t.Fatalf("occupation = %q, want %q", got, want)
		}
	}
	if inner.occCalls != 1 { // only the first cache miss reaches the graph
		t.Errorf("graph calls = %d, want 1", inner.occCalls)
	}
	if c.Hits() != 4 || c.Misses() != 1 {
		t.Errorf("hits=%d misses=%d, want 4/1", c.Hits(), c.Misses())
	}
}

func TestCacheMemoizesNegativeAnswers(t *testing.T) {
	inner := &countingClient{g: Builtin()}
	c, _ := NewCache(inner, 8)
	for i := 0; i < 3; i++ {
		if occ := c.Occupation("Nobody At All"); occ != "" {
			t.Fatalf("occupation = %q for unknown person", occ)
		}
		if _, ok := c.Translate("helmet", "xx"); ok {
			t.Fatal("translation invented for unknown language")
		}
	}
	if inner.occCalls != 1 || inner.transCalls != 1 {
		t.Errorf("graph calls = %d/%d, want 1/1 (absence cached)", inner.occCalls, inner.transCalls)
	}
}

func TestCacheTranslateKeysDoNotCollide(t *testing.T) {
	g := Builtin()
	c, _ := NewCache(g, 32)
	for _, lang := range Languages[1:] {
		direct, dok := g.Translate("helmet", lang)
		cached, cok := c.Translate("helmet", lang)
		if direct != cached || dok != cok {
			t.Errorf("lang %s: cache %q/%v != graph %q/%v", lang, cached, cok, direct, dok)
		}
	}
}

func TestCacheRejectsBadArgs(t *testing.T) {
	if _, err := NewCache(nil, 8); err == nil {
		t.Error("nil client accepted")
	}
	if _, err := NewCache(Builtin(), 0); err == nil {
		t.Error("zero capacity accepted")
	}
}
