// Package kgraph simulates the Knowledge Graph the product-classification
// case study queries (paper §3.2): typed entities, a product taxonomy with
// category ancestry, per-person occupations, and keyword translations in ten
// languages ("we queried Google's Knowledge Graph for translations of
// keywords in ten languages").
package kgraph

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// EntityKind classifies graph nodes.
type EntityKind int

// Entity kinds.
const (
	KindPerson EntityKind = iota
	KindProductCategory
	KindKeyword
)

// Entity is one graph node.
type Entity struct {
	// ID is the unique node id, e.g. "person/ava_stone".
	ID string
	// Kind is the node's class.
	Kind EntityKind
	// Name is the display name.
	Name string
	// Props holds string properties, e.g. "occupation" for persons.
	Props map[string]string
}

// Graph is an in-memory typed entity graph. It is safe for concurrent reads
// after construction; mutation methods are serialized.
type Graph struct {
	mu       sync.RWMutex
	entities map[string]*Entity // guarded by mu
	// parents maps a category node to its parent category ("subcategory_of").
	// guarded by mu
	parents map[string]string
	// translations maps keyword -> language -> translated surface form.
	// guarded by mu
	translations map[string]map[string]string
}

// New returns an empty graph.
func New() *Graph {
	return &Graph{
		entities:     make(map[string]*Entity),
		parents:      make(map[string]string),
		translations: make(map[string]map[string]string),
	}
}

// AddEntity inserts or replaces a node.
func (g *Graph) AddEntity(e *Entity) {
	g.mu.Lock()
	defer g.mu.Unlock()
	cp := *e
	if cp.Props == nil {
		cp.Props = map[string]string{}
	}
	g.entities[e.ID] = &cp
}

// Entity returns the node with the given id, or nil.
func (g *Graph) Entity(id string) *Entity {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.entities[id]
}

// NumEntities returns the node count.
func (g *Graph) NumEntities() int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return len(g.entities)
}

// SetParent records that category child is a subcategory of parent.
func (g *Graph) SetParent(child, parent string) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.parents[child] = parent
}

// Ancestors returns the category chain from the node's parent to the root.
// Cycles are broken defensively.
func (g *Graph) Ancestors(id string) []string {
	g.mu.RLock()
	defer g.mu.RUnlock()
	var out []string
	seen := map[string]bool{id: true}
	for {
		p, ok := g.parents[id]
		if !ok || seen[p] {
			return out
		}
		out = append(out, p)
		seen[p] = true
		id = p
	}
}

// IsDescendantOf reports whether id equals ancestor or lies below it in the
// taxonomy. This is the primitive behind "accessories and parts are now in
// the category of interest" (§3.2).
func (g *Graph) IsDescendantOf(id, ancestor string) bool {
	if id == ancestor {
		return true
	}
	for _, a := range g.Ancestors(id) {
		if a == ancestor {
			return true
		}
	}
	return false
}

// AddTranslation records keyword's surface form in a language.
func (g *Graph) AddTranslation(keyword, language, form string) {
	g.mu.Lock()
	defer g.mu.Unlock()
	m, ok := g.translations[keyword]
	if !ok {
		m = make(map[string]string)
		g.translations[keyword] = m
	}
	m[language] = form
}

// Translate returns keyword's form in language; ok is false when the graph
// has no translation (the LF then abstains — realistic coverage gaps).
func (g *Graph) Translate(keyword, language string) (string, bool) {
	g.mu.RLock()
	defer g.mu.RUnlock()
	form, ok := g.translations[keyword][language]
	return form, ok
}

// TranslationsOf returns every known (language, form) pair for keyword,
// sorted by language for determinism.
func (g *Graph) TranslationsOf(keyword string) []Translation {
	g.mu.RLock()
	defer g.mu.RUnlock()
	var out []Translation
	for lang, form := range g.translations[keyword] {
		out = append(out, Translation{Language: lang, Form: form})
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Language < out[b].Language })
	return out
}

// Translation is one localized surface form.
type Translation struct {
	Language string
	Form     string
}

// Occupation returns a person entity's occupation property, or "".
func (g *Graph) Occupation(personName string) string {
	id := PersonID(personName)
	e := g.Entity(id)
	if e == nil {
		return ""
	}
	return e.Props["occupation"]
}

// PersonID derives the canonical node id for a person name.
func PersonID(name string) string {
	return "person/" + strings.ReplaceAll(strings.ToLower(name), " ", "_")
}

// CategoryID derives the canonical node id for a product category.
func CategoryID(name string) string {
	return "category/" + strings.ReplaceAll(strings.ToLower(name), " ", "_")
}

// Validate checks referential integrity: every parent edge and translation
// refers to existing nodes.
func (g *Graph) Validate() error {
	g.mu.RLock()
	defer g.mu.RUnlock()
	for child, parent := range g.parents {
		if g.entities[child] == nil {
			return fmt.Errorf("kgraph: parent edge from unknown node %q", child)
		}
		if g.entities[parent] == nil {
			return fmt.Errorf("kgraph: parent edge to unknown node %q", parent)
		}
	}
	for kw := range g.translations {
		if g.entities["keyword/"+kw] == nil {
			return fmt.Errorf("kgraph: translations for unknown keyword %q", kw)
		}
	}
	return nil
}
