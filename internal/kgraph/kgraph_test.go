package kgraph

import (
	"testing"

	"repro/internal/nlp"
)

func TestEntityRoundTrip(t *testing.T) {
	g := New()
	g.AddEntity(&Entity{ID: "person/x", Kind: KindPerson, Name: "x",
		Props: map[string]string{"occupation": "celebrity"}})
	e := g.Entity("person/x")
	if e == nil || e.Props["occupation"] != "celebrity" {
		t.Fatalf("Entity = %+v", e)
	}
	if g.Entity("missing") != nil {
		t.Error("missing entity should be nil")
	}
	if g.NumEntities() != 1 {
		t.Errorf("NumEntities = %d", g.NumEntities())
	}
}

func TestAddEntityCopies(t *testing.T) {
	g := New()
	e := &Entity{ID: "a", Name: "a"}
	g.AddEntity(e)
	e.Name = "mutated"
	if g.Entity("a").Name != "a" {
		t.Error("AddEntity aliases caller struct")
	}
}

func TestTaxonomy(t *testing.T) {
	g := Builtin()
	acc := CategoryID(CategoryBikeAccessory)
	bikes := CategoryID(CategoryBicycles)
	if !g.IsDescendantOf(acc, bikes) {
		t.Error("bike accessories should descend from bicycles")
	}
	if !g.IsDescendantOf(bikes, bikes) {
		t.Error("a category descends from itself")
	}
	other := CategoryID(CategoryOtherAccessory)
	if g.IsDescendantOf(other, bikes) {
		t.Error("other accessories must not descend from bicycles")
	}
	anc := g.Ancestors(acc)
	if len(anc) != 1 || anc[0] != bikes {
		t.Errorf("Ancestors = %v", anc)
	}
}

func TestAncestorsCycleSafe(t *testing.T) {
	g := New()
	g.AddEntity(&Entity{ID: "a"})
	g.AddEntity(&Entity{ID: "b"})
	g.SetParent("a", "b")
	g.SetParent("b", "a")
	if got := g.Ancestors("a"); len(got) != 1 {
		t.Errorf("cycle not broken: %v", got)
	}
}

func TestTranslations(t *testing.T) {
	g := Builtin()
	form, ok := g.Translate("helmet", "fr")
	if !ok || form != "fr_temleh" {
		t.Errorf("Translate(helmet, fr) = %q, %v", form, ok)
	}
	form, ok = g.Translate("helmet", "en")
	if !ok || form != "helmet" {
		t.Errorf("Translate(helmet, en) = %q, %v", form, ok)
	}
	if _, ok := g.Translate("helmet", "xx"); ok {
		t.Error("unknown language should miss")
	}
	if _, ok := g.Translate("unknownkw", "fr"); ok {
		t.Error("unknown keyword should miss")
	}
	all := g.TranslationsOf("helmet")
	if len(all) != len(Languages) {
		t.Errorf("TranslationsOf = %d forms, want %d", len(all), len(Languages))
	}
	for i := 0; i+1 < len(all); i++ {
		if all[i].Language >= all[i+1].Language {
			t.Error("translations not sorted by language")
		}
	}
}

func TestOccupations(t *testing.T) {
	g := Builtin()
	if !IsCelebrity(g, nlp.CelebrityNames[0]) {
		t.Errorf("%q should be a celebrity", nlp.CelebrityNames[0])
	}
	if IsCelebrity(g, nlp.OtherPersonNames[0]) {
		t.Errorf("%q should not be a celebrity", nlp.OtherPersonNames[0])
	}
	if g.Occupation("nobody at all") != "" {
		t.Error("unknown person should have empty occupation")
	}
}

func TestBuiltinValidates(t *testing.T) {
	if err := Builtin().Validate(); err != nil {
		t.Error(err)
	}
}

func TestValidateCatchesDangles(t *testing.T) {
	g := New()
	g.AddEntity(&Entity{ID: "a"})
	g.SetParent("a", "ghost")
	if err := g.Validate(); err == nil {
		t.Error("dangling parent accepted")
	}
	g2 := New()
	g2.AddTranslation("kw", "fr", "kw_fr")
	if err := g2.Validate(); err == nil {
		t.Error("translation for unknown keyword accepted")
	}
}

func TestIDHelpers(t *testing.T) {
	if PersonID("Ava Stone") != "person/ava_stone" {
		t.Errorf("PersonID = %q", PersonID("Ava Stone"))
	}
	if CategoryID("Bike Parts") != "category/bike_parts" {
		t.Errorf("CategoryID = %q", CategoryID("Bike Parts"))
	}
}

func TestBuiltinCoversAllGazetteerPersons(t *testing.T) {
	g := Builtin()
	for _, name := range nlp.CelebrityNames {
		if g.Occupation(name) != "celebrity" {
			t.Errorf("celebrity %q missing from graph", name)
		}
	}
	for _, name := range nlp.OtherPersonNames {
		if g.Occupation(name) != "civilian" {
			t.Errorf("person %q missing from graph", name)
		}
	}
}
