package kgraph

import (
	"fmt"

	"repro/internal/lru"
)

// Client is the query surface labeling functions use against the knowledge
// graph. *Graph implements it directly; Cache wraps any Client with
// memoization for the online serving path, standing in for the remote
// Knowledge Graph service whose round-trips are what make graph-based
// signals non-servable (§4).
type Client interface {
	// Occupation returns a person's occupation property, or "".
	Occupation(personName string) string
	// Translate returns keyword's surface form in language; ok is false
	// when the graph has no translation.
	Translate(keyword, language string) (string, bool)
}

var _ Client = (*Graph)(nil)

// translation caches a Translate answer including its ok bit, so known
// coverage gaps are also served from cache.
type translation struct {
	form string
	ok   bool
}

// Cache memoizes Client calls in an LRU. Safe for concurrent use. Negative
// answers (unknown person, missing translation) are cached too: the graph
// is read-only at serving time, so absence is as stable as presence.
type Cache struct {
	inner        Client
	occupations  *lru.Cache[string, string]
	translations *lru.Cache[string, translation]
}

var _ Client = (*Cache)(nil)

// NewCache wraps inner with LRUs of the given per-query-kind capacity.
func NewCache(inner Client, capacity int) (*Cache, error) {
	if inner == nil {
		return nil, fmt.Errorf("kgraph: NewCache(nil)")
	}
	occ, err := lru.New[string, string](capacity)
	if err != nil {
		return nil, fmt.Errorf("kgraph: %w", err)
	}
	tr, err := lru.New[string, translation](capacity)
	if err != nil {
		return nil, fmt.Errorf("kgraph: %w", err)
	}
	return &Cache{inner: inner, occupations: occ, translations: tr}, nil
}

// Occupation implements Client.
func (c *Cache) Occupation(personName string) string {
	if occ, ok := c.occupations.Get(personName); ok {
		return occ
	}
	occ := c.inner.Occupation(personName)
	c.occupations.Add(personName, occ)
	return occ
}

// Translate implements Client.
func (c *Cache) Translate(keyword, language string) (string, bool) {
	key := keyword + "\x00" + language
	if tr, ok := c.translations.Get(key); ok {
		return tr.form, tr.ok
	}
	form, ok := c.inner.Translate(keyword, language)
	c.translations.Add(key, translation{form: form, ok: ok})
	return form, ok
}

// Hits returns cache hits across both query kinds.
func (c *Cache) Hits() int64 { return c.occupations.Hits() + c.translations.Hits() }

// Misses returns cache misses across both query kinds.
func (c *Cache) Misses() int64 { return c.occupations.Misses() + c.translations.Misses() }

// HitRate returns hits/(hits+misses), or 0 before any lookup.
func (c *Cache) HitRate() float64 {
	h, m := float64(c.Hits()), float64(c.Misses())
	if h+m == 0 {
		return 0
	}
	return h / (h + m)
}
