package kgraph

import (
	"fmt"

	"repro/internal/nlp"
)

// Languages are the ten locales the product classifier serves (§3.2: "we
// queried Google's Knowledge Graph for translations of keywords in ten
// languages"). English is the base language of the keyword gazetteers.
var Languages = []string{"en", "fr", "de", "es", "it", "pt", "nl", "sv", "pl", "tr"}

// Product-category taxonomy for the product-classification case study. The
// category of interest is "bicycles"; after the strategy change it includes
// accessories and parts (§3.2).
const (
	CategoryBicycles       = "bicycles"
	CategoryBikeAccessory  = "bike accessories"
	CategoryBikePart       = "bike parts"
	CategoryOtherAccessory = "other accessories"
	CategoryElectronics    = "electronics"
)

// BikeKeywords name products squarely in the category of interest.
var BikeKeywords = []string{"bicycle", "tandem", "velodrome", "gravelbike", "fixie"}

// BikeAccessoryKeywords name accessories and parts that the expanded
// category now includes.
var BikeAccessoryKeywords = []string{
	"helmet", "pannier", "saddle", "kickstand", "handlebar",
	"derailleur", "chainring", "crankset", "fender", "mudguard",
}

// OtherAccessoryKeywords name accessories outside the category of interest
// — the hard negatives that forced the relabeling.
var OtherAccessoryKeywords = []string{
	"phonecase", "watchband", "lensfilter", "keychain", "carmat",
	"earbudcase", "laptopsleeve", "tripodmount",
}

// Builtin constructs the reproduction's standard knowledge graph: persons
// with occupations (celebrities vs others), the product taxonomy, and
// keyword translations for all ten languages. Translated surface forms are
// synthetic ("helmet" → "helmet_fr"): what matters is that the corpus
// generator and the translation labeling function share them through the
// graph, exactly as both sides shared the real Knowledge Graph at Google.
func Builtin() *Graph {
	g := New()

	for _, name := range nlp.CelebrityNames {
		g.AddEntity(&Entity{
			ID: PersonID(name), Kind: KindPerson, Name: name,
			Props: map[string]string{"occupation": "celebrity"},
		})
	}
	for _, name := range nlp.OtherPersonNames {
		g.AddEntity(&Entity{
			ID: PersonID(name), Kind: KindPerson, Name: name,
			Props: map[string]string{"occupation": "civilian"},
		})
	}

	for _, cat := range []string{
		CategoryBicycles, CategoryBikeAccessory, CategoryBikePart,
		CategoryOtherAccessory, CategoryElectronics,
	} {
		g.AddEntity(&Entity{ID: CategoryID(cat), Kind: KindProductCategory, Name: cat})
	}
	g.SetParent(CategoryID(CategoryBikeAccessory), CategoryID(CategoryBicycles))
	g.SetParent(CategoryID(CategoryBikePart), CategoryID(CategoryBicycles))
	g.SetParent(CategoryID(CategoryOtherAccessory), CategoryID(CategoryElectronics))

	addKeywords := func(keywords []string) {
		for _, kw := range keywords {
			g.AddEntity(&Entity{ID: "keyword/" + kw, Kind: KindKeyword, Name: kw})
			for _, lang := range Languages {
				g.AddTranslation(kw, lang, PseudoTranslate(kw, lang))
			}
		}
	}
	addKeywords(BikeKeywords)
	addKeywords(BikeAccessoryKeywords)
	addKeywords(OtherAccessoryKeywords)
	return g
}

// PseudoTranslate derives a keyword's synthetic surface form in a language:
// English keeps the keyword; other locales get the language code prefixed to
// the reversed keyword ("helmet", "fr" → "fr_temleh"). Reversal guarantees
// the English form is not a substring of any translation, so English-only
// keyword rules genuinely cannot match localized text — the coverage gap the
// Knowledge Graph LF closes.
func PseudoTranslate(kw, lang string) string {
	if lang == "en" {
		return kw
	}
	r := []rune(kw)
	for i, j := 0, len(r)-1; i < j; i, j = i+1, j-1 {
		r[i], r[j] = r[j], r[i]
	}
	return fmt.Sprintf("%s_%s", lang, string(r))
}

// IsCelebrity reports whether the graph knows the person as a celebrity.
// It accepts any Client so the online serving path can answer through a
// cache instead of the graph itself.
func IsCelebrity(g Client, personName string) bool {
	return g.Occupation(personName) == "celebrity"
}
