package core

import (
	"context"
	"math"
	"testing"

	"repro/internal/apps"
	"repro/internal/corpus"
	"repro/internal/dfs"
	"repro/internal/labelmodel"
)

func maxDiff(a, b []float64) float64 {
	d := 0.0
	for i := range a {
		if v := math.Abs(a[i] - b[i]); v > d {
			d = v
		}
	}
	return d
}

// TestIncrementalRunMatchesColdRerun is the pipeline-level equivalence
// contract of the incremental path: base run + 10% corpus append + one
// IncrementalRun must produce the identical vote matrix, model, and
// posteriors as a cold full rerun — while executing only the delta's tasks.
func TestIncrementalRunMatchesColdRerun(t *testing.T) {
	// GenerateTopic is sequential-seeded, so the first 1500 docs of the
	// 1650-doc corpus ARE the base corpus: the tail is a pure append.
	full, err := corpus.GenerateTopic(corpus.TopicSpec{NumDocs: 1650, PositiveRate: 0.05, Seed: 29})
	if err != nil {
		t.Fatal(err)
	}
	base, delta := full[:1500], full[1500:]

	fs := dfs.NewMem()
	cfg := topicConfig(fs)
	cfg.Trainer = TrainerSamplingFreeFast
	lfs := apps.TopicLFs(nil, 0.02, 1)
	baseRes, err := Run(cfg, base, lfs)
	if err != nil {
		t.Fatal(err)
	}
	_, prev, err := labelmodel.TrainSamplingFreeFastWarm(baseRes.Matrix, cfg.LabelModel, nil)
	if err != nil {
		t.Fatal(err)
	}

	g, err := StageDelta(context.Background(), cfg, Examples(delta), nil)
	if err != nil {
		t.Fatal(err)
	}
	if g.Gen != 1 || g.StartRow != 1500 || g.Records != 150 {
		t.Fatalf("staged delta = %+v", g)
	}
	inc, err := IncrementalRun(context.Background(), cfg, lfs, prev)
	if err != nil {
		t.Fatal(err)
	}
	if len(inc.Generations) != 1 || inc.Generations[0] != 1 {
		t.Fatalf("published generations %v, want [1]", inc.Generations)
	}
	if inc.DeltaExamples != 150 {
		t.Errorf("delta examples = %d, want 150", inc.DeltaExamples)
	}
	// Only the delta's tasks ran: one per delta shard, no retries expected
	// on the in-memory FS.
	if inc.DeltaTaskAttempts != cfg.Shards {
		t.Errorf("delta task attempts = %d, want %d (delta shards only)", inc.DeltaTaskAttempts, cfg.Shards)
	}
	if !inc.WarmStarted {
		t.Error("run did not warm-start despite a previous state")
	}

	// Cold reference: full rerun over the whole corpus on a fresh FS.
	coldFS := dfs.NewMem()
	coldCfg := topicConfig(coldFS)
	coldCfg.Trainer = TrainerSamplingFreeFast
	cold, err := Run(coldCfg, full, apps.TopicLFs(nil, 0.02, 1))
	if err != nil {
		t.Fatal(err)
	}

	if inc.Matrix.NumExamples() != cold.Matrix.NumExamples() || inc.Matrix.NumFuncs() != cold.Matrix.NumFuncs() {
		t.Fatalf("matrix %dx%d, cold %dx%d", inc.Matrix.NumExamples(), inc.Matrix.NumFuncs(),
			cold.Matrix.NumExamples(), cold.Matrix.NumFuncs())
	}
	for i := 0; i < cold.Matrix.NumExamples(); i++ {
		for j := 0; j < cold.Matrix.NumFuncs(); j++ {
			if inc.Matrix.At(i, j) != cold.Matrix.At(i, j) {
				t.Fatalf("vote [%d,%d]: incremental %v, cold %v", i, j, inc.Matrix.At(i, j), cold.Matrix.At(i, j))
			}
		}
	}
	if d := maxDiff(inc.Model.Alpha, cold.Model.Alpha); d != 0 {
		t.Errorf("alpha diverged: max |inc-cold| = %g, want exact", d)
	}
	if d := maxDiff(inc.Posteriors, cold.Posteriors); d != 0 {
		t.Errorf("posteriors diverged: max |inc-cold| = %g, want exact", d)
	}

	// Refreshed labels persisted over the full corpus and re-loadable.
	loaded, err := ReadLabels(fs, inc.LabelsPath)
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded) != 1650 {
		t.Fatalf("persisted %d labels, want 1650", len(loaded))
	}
}

// TestIncrementalRunCaughtUpAndDeletions covers the steady-state loop: a run
// with nothing pending publishes no generation but still refreshes the
// model, and a deletions-only delta shrinks the view while keeping the α
// warm start (the compaction prefix is invalidated).
func TestIncrementalRunCaughtUpAndDeletions(t *testing.T) {
	full, err := corpus.GenerateTopic(corpus.TopicSpec{NumDocs: 800, PositiveRate: 0.05, Seed: 31})
	if err != nil {
		t.Fatal(err)
	}
	fs := dfs.NewMem()
	cfg := topicConfig(fs)
	cfg.Trainer = TrainerSamplingFreeFast
	lfs := apps.TopicLFs(nil, 0.02, 1)
	if _, err := Run(cfg, full, lfs); err != nil {
		t.Fatal(err)
	}

	// Caught up: no pending deltas.
	inc, err := IncrementalRun(context.Background(), cfg, lfs, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(inc.Generations) != 0 || inc.DeltaTaskAttempts != 0 {
		t.Fatalf("caught-up run executed work: generations %v, attempts %d", inc.Generations, inc.DeltaTaskAttempts)
	}
	if inc.Matrix.NumExamples() != 800 || len(inc.Posteriors) != 800 {
		t.Fatalf("caught-up run view %d rows, %d posteriors", inc.Matrix.NumExamples(), len(inc.Posteriors))
	}

	// Deletions-only delta: tombstone 10 rows.
	deleted := []int{3, 50, 100, 199, 200, 201, 400, 555, 600, 799}
	if _, err := StageDelta(context.Background(), cfg, nil, deleted); err != nil {
		t.Fatal(err)
	}
	inc2, err := IncrementalRun(context.Background(), cfg, lfs, inc.State)
	if err != nil {
		t.Fatal(err)
	}
	if len(inc2.Generations) != 1 {
		t.Fatalf("deletion delta published %v generations", inc2.Generations)
	}
	if inc2.Matrix.NumExamples() != 790 || len(inc2.Posteriors) != 790 {
		t.Fatalf("post-deletion view %d rows, %d posteriors", inc2.Matrix.NumExamples(), len(inc2.Posteriors))
	}
	if !inc2.WarmStarted {
		t.Error("deletion run should still warm-start from α")
	}

	// A delta with nothing in it is rejected at staging.
	if _, err := StageDelta(context.Background(), cfg, nil, nil); err == nil {
		t.Fatal("empty delta staged")
	}
}
