// Compaction: fold the generation chain back into flat artifacts.
//
// Incremental runs leave two parallel ledgers behind — corpus deltas under
// the input area and vote generations over the columnar artifact. Compact
// folds both in one step, which is the only safe unit: folding votes alone
// resets the vote store's generation counter while the corpus manifest still
// lists deltas, and the next run would re-execute (or mis-number) them.
package core

import (
	"bytes"
	"fmt"
	"path"

	"repro/internal/dfs"
	"repro/internal/lf"
	"repro/internal/mapreduce"
	"repro/internal/recordio"
)

// Compact folds the corpus delta ledger and the vote generation chain into
// flat base artifacts. Afterwards the filesystem is indistinguishable from a
// fresh base run staged over the compacted corpus — restaged input shards and
// the folded vote artifact are byte-identical to that run's, both ledgers are
// empty, and the next StageDelta starts a new chain at generation 1.
//
// Compact requires the vote store to be caught up with the corpus ledger
// (every staged delta executed, e.g. by IncrementalRun); otherwise the
// pending deltas' votes would be lost. It replays the deltas over the staged
// records with the vote layer's exact semantics: later generations supersede
// row ranges, tombstones drop rows unless a later generation rewrites them.
//
// A crash mid-compaction leaves at worst a folded corpus ledger with the vote
// chain still standing, which loads correctly and is repaired by running
// Compact again.
func Compact[T any](cfg Config[T]) error {
	cfg, err := cfg.WithDefaults()
	if err != nil {
		return err
	}
	votesBase := path.Join(cfg.VotesPrefix(), "votes")
	gens, err := readCorpusManifest(cfg)
	if err != nil {
		return err
	}
	if len(gens) == 0 {
		// Nothing in the corpus ledger; fold any leftover vote chain (the
		// crash-repair path) and be done.
		return lf.CompactGenerations(cfg.FS, votesBase, cfg.Shards)
	}
	executed, err := lf.LatestGeneration(cfg.FS, votesBase)
	if err != nil {
		return err
	}
	if executed < len(gens) {
		return fmt.Errorf("drybell: compact: corpus ledger has %d generations but only %d executed; run IncrementalRun first", len(gens), executed)
	}

	records, err := readStagedRecords(cfg.FS, cfg.InputBase())
	if err != nil {
		return fmt.Errorf("drybell: compact: read base corpus: %w", err)
	}
	live := make([]bool, len(records))
	for i := range live {
		live[i] = true
	}
	for _, g := range gens {
		if g.Records > 0 {
			drecs, err := readStagedRecords(cfg.FS, cfg.deltaInputBase(g.Gen))
			if err != nil {
				return fmt.Errorf("drybell: compact: read delta generation %d: %w", g.Gen, err)
			}
			if len(drecs) != g.Records {
				return fmt.Errorf("drybell: compact: delta generation %d staged %d records, manifest says %d", g.Gen, len(drecs), g.Records)
			}
			if end := g.StartRow + len(drecs); end > len(records) {
				records = append(records, make([][]byte, end-len(records))...)
				live = append(live, make([]bool, end-len(live))...)
			}
			for i, rec := range drecs {
				records[g.StartRow+i] = rec
				live[g.StartRow+i] = true
			}
		}
		for _, row := range g.Deleted {
			if row >= 0 && row < len(live) {
				live[row] = false
			}
		}
	}
	w, err := mapreduce.NewInputWriter(cfg.FS, cfg.InputBase(), cfg.Shards)
	if err != nil {
		return err
	}
	for i, rec := range records {
		if !live[i] {
			continue
		}
		if err := w.Append(rec); err != nil {
			return fmt.Errorf("drybell: compact: restage corpus: %w", err)
		}
	}
	if err := w.Commit(); err != nil {
		return fmt.Errorf("drybell: compact: restage corpus: %w", err)
	}

	// Corpus ledger first, votes second: if we crash in between, the vote
	// chain still stands over an empty ledger — reads stay correct and a
	// Compact retry folds it — whereas folding votes first would reset the
	// generation counter under a manifest that still lists deltas.
	if err := cfg.FS.Remove(cfg.CorpusManifestPath()); err != nil {
		return fmt.Errorf("drybell: compact: remove corpus manifest: %w", err)
	}
	for _, g := range gens {
		if g.Records == 0 {
			continue
		}
		shards, err := dfs.ListShards(cfg.FS, cfg.deltaInputBase(g.Gen))
		if err != nil {
			continue // already gone; orphaned inputs are never re-read
		}
		for _, s := range shards {
			_ = cfg.FS.Remove(s)
		}
		_ = cfg.FS.Remove(cfg.deltaInputBase(g.Gen) + ".count")
	}
	return lf.CompactGenerations(cfg.FS, votesBase, cfg.Shards)
}

// readStagedRecords reads a staged shard set back in staging order: record k
// is the k/n-th record of shard k%n (the InputWriter round-robin layout).
func readStagedRecords(fs dfs.FS, base string) ([][]byte, error) {
	shards, err := dfs.ListShards(fs, base)
	if err != nil {
		return nil, err
	}
	n := len(shards)
	perShard := make([][][]byte, n)
	total := 0
	for s, shard := range shards {
		data, err := fs.ReadFile(shard)
		if err != nil {
			return nil, err
		}
		recs, err := recordio.ReadAll(bytes.NewReader(data))
		if err != nil {
			return nil, fmt.Errorf("shard %s: %w", shard, err)
		}
		perShard[s] = recs
		total += len(recs)
	}
	out := make([][]byte, total)
	for s, recs := range perShard {
		for r, rec := range recs {
			idx := s + r*n
			if idx >= total {
				return nil, fmt.Errorf("staged shards at %s are inconsistent (index %d of %d)", base, idx, total)
			}
			out[idx] = rec
		}
	}
	return out, nil
}
