package core

import (
	"testing"
	"time"

	"repro/internal/apps"
	"repro/internal/corpus"
	"repro/internal/dfs"
	"repro/internal/labelmodel"
	"repro/internal/model"
	"repro/internal/serving"
)

func topicConfig(fs dfs.FS) Config[*corpus.Document] {
	return Config[*corpus.Document]{
		FS:      fs,
		Encode:  func(d *corpus.Document) ([]byte, error) { return d.Marshal() },
		Decode:  corpus.UnmarshalDocument,
		Shards:  4,
		Trainer: TrainerAnalytic, // fastest for tests; others covered below
		LabelModel: labelmodel.Options{
			Steps: 600, BatchSize: 256, LR: 0.02, Seed: 3,
		},
	}
}

func TestPipelineEndToEndTopic(t *testing.T) {
	docs, err := corpus.GenerateTopic(corpus.TopicSpec{NumDocs: 6000, PositiveRate: 0.05, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	fs := dfs.NewMem()
	res, err := Run(topicConfig(fs), docs, apps.TopicLFs(nil, 0.02, 1))
	if err != nil {
		t.Fatal(err)
	}
	if res.Matrix.NumExamples() != len(docs) || res.Matrix.NumFuncs() != 10 {
		t.Fatalf("matrix %dx%d", res.Matrix.NumExamples(), res.Matrix.NumFuncs())
	}
	if len(res.Posteriors) != len(docs) {
		t.Fatalf("posteriors = %d", len(res.Posteriors))
	}
	// Probabilistic labels must beat majority vote and random on gold.
	gold := make([]labelmodel.Label, len(docs))
	for i, d := range docs {
		if d.Gold {
			gold[i] = labelmodel.Positive
		} else {
			gold[i] = labelmodel.Negative
		}
	}
	acc := labelmodel.PosteriorAccuracy(res.Posteriors, gold)
	if acc < 0.95 {
		t.Errorf("posterior accuracy = %.4f, want ≥ 0.95 on this corpus", acc)
	}
	// Labels persisted and re-loadable in order.
	loaded, err := ReadLabels(fs, res.LabelsPath)
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded) != len(docs) {
		t.Fatalf("loaded %d labels", len(loaded))
	}
	for i := range loaded {
		if loaded[i] != res.Posteriors[i] {
			t.Fatalf("label %d: %v != %v", i, loaded[i], res.Posteriors[i])
		}
	}
	// Report and timings populated.
	if res.LFReport == nil || len(res.LFReport.PerLF) != 10 {
		t.Error("LF report missing")
	}
	if res.Timings.Execute <= 0 || res.Timings.TrainLabelModel <= 0 {
		t.Error("timings missing")
	}
}

func TestPipelineAllTrainers(t *testing.T) {
	docs, err := corpus.GenerateTopic(corpus.TopicSpec{NumDocs: 2000, PositiveRate: 0.05, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	for _, tr := range []Trainer{TrainerSamplingFree, TrainerAnalytic, TrainerGibbs} {
		t.Run(string(tr), func(t *testing.T) {
			cfg := topicConfig(dfs.NewMem())
			cfg.Trainer = tr
			cfg.LabelModel.Steps = 200
			res, err := Run(cfg, docs, apps.TopicLFs(nil, 0.02, 1))
			if err != nil {
				t.Fatal(err)
			}
			for _, p := range res.Posteriors {
				if p < 0 || p > 1 {
					t.Fatalf("posterior %v out of range", p)
				}
			}
		})
	}
}

func TestPipelineValidation(t *testing.T) {
	docs, _ := corpus.GenerateTopic(corpus.TopicSpec{NumDocs: 10, PositiveRate: 0.3, Seed: 1})
	lfs := apps.TopicLFs(nil, 0, 1)
	if _, err := Run(Config[*corpus.Document]{}, docs, lfs); err == nil {
		t.Error("config without codecs accepted")
	}
	cfg := topicConfig(dfs.NewMem())
	if _, err := Run(cfg, nil, lfs); err == nil {
		t.Error("empty corpus accepted")
	}
	if _, err := Run(cfg, docs, nil); err == nil {
		t.Error("no LFs accepted")
	}
	cfg.Trainer = "bogus"
	if _, err := Run(cfg, docs, lfs); err == nil {
		t.Error("unknown trainer accepted")
	}
}

func TestWriteLabelsRejectsInvalid(t *testing.T) {
	fs := dfs.NewMem()
	if err := WriteLabels(fs, "l", []float64{1.5}, 1); err == nil {
		t.Error("label > 1 accepted")
	}
	if err := WriteLabels(fs, "l", []float64{-0.1}, 1); err == nil {
		t.Error("label < 0 accepted")
	}
}

func TestContentClassifierTrainsAndServes(t *testing.T) {
	docs, err := corpus.GenerateTopic(corpus.TopicSpec{NumDocs: 6000, PositiveRate: 0.05, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	sp, err := corpus.MakeSplit(len(docs), 500, 1000, 3)
	if err != nil {
		t.Fatal(err)
	}
	train := corpus.Select(docs, sp.Train)
	dev := corpus.Select(docs, sp.Dev)
	test := corpus.Select(docs, sp.Test)

	res, err := Run(topicConfig(dfs.NewMem()), train, apps.TopicLFs(nil, 0.02, 1))
	if err != nil {
		t.Fatal(err)
	}
	clf, err := TrainContentClassifier(train, res.Posteriors, dev, ContentTrainConfig{
		FeatureDim: 1 << 16, Bigrams: true, Iterations: 15000, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	met, err := clf.Evaluate(test)
	if err != nil {
		t.Fatal(err)
	}
	if met.F1 < 0.6 {
		t.Errorf("weakly supervised F1 = %.3f, want ≥ 0.6", met.F1)
	}

	// The classifier must beat the dev-set supervised baseline (Table 2).
	base, err := TrainSupervisedBaseline(dev, ContentTrainConfig{
		FeatureDim: 1 << 16, Bigrams: true, Iterations: 15000, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	baseMet, err := base.Evaluate(test)
	if err != nil {
		t.Fatal(err)
	}
	if met.F1 <= baseMet.F1 {
		t.Errorf("DryBell F1 %.3f should beat dev-only baseline %.3f", met.F1, baseMet.F1)
	}

	// Serving path: export, validate, promote, score parity.
	reg := serving.NewRegistry()
	art, err := clf.StageForServing(reg, "topic-clf", test[:50], 50*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	live, err := reg.Live("topic-clf")
	if err != nil || live.Version != art.Version {
		t.Fatalf("live = %v, %v", live, err)
	}
	srv, err := serving.NewServer(live)
	if err != nil {
		t.Fatal(err)
	}
	x := clf.Hasher.DocumentVector(test[0], true)
	if got, want := srv.Score(x), clf.Scores(test[:1])[0]; absDiff(got, want) > 1e-9 {
		t.Errorf("served score %v != pipeline score %v", got, want)
	}
}

func TestEventClassifierCrossFeatureTransfer(t *testing.T) {
	events, err := corpus.GenerateEvents(corpus.DefaultEventsSpec(8000, 31))
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config[*corpus.Event]{
		FS:      dfs.NewMem(),
		Encode:  func(e *corpus.Event) ([]byte, error) { return e.Marshal() },
		Decode:  corpus.UnmarshalEvent,
		Trainer: TrainerAnalytic,
		LabelModel: labelmodel.Options{
			Steps: 500, BatchSize: 256, LR: 0.02, Seed: 3,
		},
	}
	res, err := Run(cfg, events, apps.EventLFs(60, 1))
	if err != nil {
		t.Fatal(err)
	}
	clf, err := TrainEventClassifier(events, res.Posteriors, EventTrainConfig{
		Hidden: []int{16, 8}, Epochs: 3, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Tune the decision threshold for F1 on a labeled dev slice, as the
	// paper does, then evaluate on the rest.
	dev, test := events[:2000], events[2000:]
	tune := func(c *EventClassifier) error {
		scores, err := c.Scores(dev)
		if err != nil {
			return err
		}
		th, _, err := model.BestF1Threshold(scores, corpus.EventGoldLabels(dev))
		if err != nil {
			return err
		}
		c.Threshold = th
		return nil
	}
	if err := tune(clf); err != nil {
		t.Fatal(err)
	}
	met, err := clf.Evaluate(test)
	if err != nil {
		t.Fatal(err)
	}
	// The DNN sees only servable features; weak supervision was defined
	// entirely over non-servable ones. Knowledge must transfer.
	if met.F1 < 0.5 {
		t.Errorf("cross-feature F1 = %.3f, want ≥ 0.5", met.F1)
	}
	// DryBell labels must beat Logical-OR labels for the same DNN (§6.4).
	orLabels := labelmodel.LogicalORPosteriors(res.Matrix)
	orClf, err := TrainEventClassifier(events, orLabels, EventTrainConfig{
		Hidden: []int{16, 8}, Epochs: 3, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := tune(orClf); err != nil {
		t.Fatal(err)
	}
	orMet, err := orClf.Evaluate(test)
	if err != nil {
		t.Fatal(err)
	}
	if met.F1 <= orMet.F1 {
		t.Errorf("DryBell F1 %.3f should beat Logical-OR F1 %.3f", met.F1, orMet.F1)
	}
}

func TestEventClassifierValidation(t *testing.T) {
	if _, err := TrainEventClassifier(nil, nil, EventTrainConfig{}); err == nil {
		t.Error("empty events accepted")
	}
	events, _ := corpus.GenerateEvents(corpus.DefaultEventsSpec(10, 1))
	if _, err := TrainEventClassifier(events, []float64{0.5}, EventTrainConfig{}); err == nil {
		t.Error("length mismatch accepted")
	}
}

func absDiff(a, b float64) float64 {
	if a > b {
		return a - b
	}
	return b - a
}
