// Package core is the Snorkel DryBell pipeline: it wires the labeling-
// function template library, the distributed execution substrate, the
// sampling-free generative label model, and the discriminative model
// trainers into the four-stage flow of Figure 4:
//
//  1. stage unlabeled examples on the distributed filesystem,
//  2. execute each labeling function as its own MapReduce job,
//  3. combine the votes with the generative model into probabilistic
//     training labels (persisted back to the filesystem),
//  4. train a servable discriminative model on those labels and stage it
//     for serving.
//
// The package is generic over the example type; content tasks use
// *corpus.Document, the real-time events task uses *corpus.Event.
package core

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math"
	"time"

	"repro/internal/dfs"
	"repro/internal/labelmodel"
	"repro/internal/lf"
	"repro/internal/mapreduce"
	"repro/internal/recordio"
)

// Trainer selects the label-model optimizer.
type Trainer string

// Available trainers.
const (
	// TrainerSamplingFree is the paper's contribution (§5.2): marginal
	// likelihood on a static compute graph, no sampling. The default.
	TrainerSamplingFree Trainer = "samplingfree"
	// TrainerAnalytic is the same objective with hand-derived gradients.
	TrainerAnalytic Trainer = "analytic"
	// TrainerGibbs is the open-source Snorkel baseline.
	TrainerGibbs Trainer = "gibbs"
)

// Config configures a pipeline run.
type Config[T any] struct {
	// FS is the distributed filesystem; defaults to a fresh in-memory one.
	FS dfs.FS
	// WorkDir prefixes all pipeline paths on FS. Default "drybell".
	WorkDir string
	// Encode/Decode convert examples to records. Required.
	Encode func(T) ([]byte, error)
	Decode func([]byte) (T, error)
	// Shards is the input sharding. Default 8.
	Shards int
	// Parallelism is the simulated cluster width. Default 4.
	Parallelism int
	// Trainer selects the label-model optimizer. Default sampling-free.
	Trainer Trainer
	// LabelModel are the label-model training options.
	LabelModel labelmodel.Options
}

func (c Config[T]) withDefaults() (Config[T], error) {
	if c.Encode == nil || c.Decode == nil {
		return c, fmt.Errorf("drybell: Config needs Encode and Decode")
	}
	if c.FS == nil {
		c.FS = dfs.NewMem()
	}
	if c.WorkDir == "" {
		c.WorkDir = "drybell"
	}
	if c.Shards <= 0 {
		c.Shards = 8
	}
	if c.Parallelism <= 0 {
		c.Parallelism = 4
	}
	if c.Trainer == "" {
		c.Trainer = TrainerSamplingFree
	}
	return c, nil
}

// Result is the output of a pipeline run.
type Result struct {
	// Matrix is the assembled label matrix Λ.
	Matrix *labelmodel.Matrix
	// Model is the trained generative model.
	Model *labelmodel.Model
	// Posteriors are the probabilistic training labels Ỹ_i = P(Y_i=1|Λ_i),
	// aligned with the input examples.
	Posteriors []float64
	// LFReport describes per-function execution.
	LFReport *lf.Report
	// LabelsPath is the DFS base where the probabilistic labels were
	// persisted (sharded recordio of float64).
	LabelsPath string
	// Timings break down the run.
	Timings Timings
}

// Timings records per-stage wall time.
type Timings struct {
	Stage, Execute, TrainLabelModel, Persist time.Duration
}

// Run executes the weak-supervision pipeline over the examples and labeling
// functions, returning probabilistic training labels.
func Run[T any](cfg Config[T], examples []T, runners []lf.Runner[T]) (*Result, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	if len(examples) == 0 {
		return nil, fmt.Errorf("drybell: no examples")
	}
	if len(runners) == 0 {
		return nil, fmt.Errorf("drybell: no labeling functions")
	}

	// Stage 1: write the corpus to the distributed filesystem.
	t0 := time.Now()
	records := make([][]byte, len(examples))
	for i, x := range examples {
		rec, err := cfg.Encode(x)
		if err != nil {
			return nil, fmt.Errorf("drybell: encode example %d: %w", i, err)
		}
		records[i] = rec
	}
	inputBase := cfg.WorkDir + "/input/examples"
	if err := lf.Stage[T](cfg.FS, inputBase, records, cfg.Shards); err != nil {
		return nil, fmt.Errorf("drybell: stage input: %w", err)
	}
	res := &Result{}
	res.Timings.Stage = time.Since(t0)

	// Stage 2: one MapReduce job per labeling function.
	t1 := time.Now()
	exec := &lf.Executor[T]{
		FS:           cfg.FS,
		InputBase:    inputBase,
		OutputPrefix: cfg.WorkDir + "/labels",
		Decode:       cfg.Decode,
		Parallelism:  cfg.Parallelism,
	}
	matrix, report, err := exec.Execute(runners)
	if err != nil {
		return nil, err
	}
	res.Matrix = matrix
	res.LFReport = report
	res.Timings.Execute = time.Since(t1)

	// Stage 3: denoise with the generative model.
	t2 := time.Now()
	var lm *labelmodel.Model
	switch cfg.Trainer {
	case TrainerSamplingFree:
		lm, err = labelmodel.TrainSamplingFree(matrix, cfg.LabelModel)
	case TrainerAnalytic:
		lm, err = labelmodel.TrainAnalytic(matrix, cfg.LabelModel)
	case TrainerGibbs:
		lm, err = labelmodel.TrainGibbs(matrix, cfg.LabelModel)
	default:
		return nil, fmt.Errorf("drybell: unknown trainer %q", cfg.Trainer)
	}
	if err != nil {
		return nil, fmt.Errorf("drybell: train label model: %w", err)
	}
	res.Model = lm
	res.Posteriors = lm.Posteriors(matrix)
	res.Timings.TrainLabelModel = time.Since(t2)

	// Stage 4: persist probabilistic labels for the production ML systems.
	t3 := time.Now()
	res.LabelsPath = cfg.WorkDir + "/output/problabels"
	if err := WriteLabels(cfg.FS, res.LabelsPath, res.Posteriors, cfg.Shards); err != nil {
		return nil, fmt.Errorf("drybell: persist labels: %w", err)
	}
	res.Timings.Persist = time.Since(t3)
	return res, nil
}

// WriteLabels persists probabilistic labels as sharded recordio of
// little-endian float64, the hand-off format to the training systems.
func WriteLabels(fs dfs.FS, base string, labels []float64, shards int) error {
	records := make([][]byte, len(labels))
	for i, p := range labels {
		if p < 0 || p > 1 || math.IsNaN(p) {
			return fmt.Errorf("drybell: label %d = %v out of [0,1]", i, p)
		}
		var buf [8]byte
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(p))
		records[i] = buf[:]
	}
	return mapreduce.WriteInput(fs, base, records, shards)
}

// ReadLabels loads labels persisted by WriteLabels, restoring input order.
func ReadLabels(fs dfs.FS, base string) ([]float64, error) {
	shards, err := dfs.ListShards(fs, base)
	if err != nil {
		return nil, err
	}
	n := len(shards)
	perShard := make([][][]byte, n)
	total := 0
	for s, shard := range shards {
		data, err := fs.ReadFile(shard)
		if err != nil {
			return nil, err
		}
		recs, err := recordio.ReadAll(bytes.NewReader(data))
		if err != nil {
			return nil, fmt.Errorf("drybell: labels shard %s: %w", shard, err)
		}
		perShard[s] = recs
		total += len(recs)
	}
	out := make([]float64, total)
	for s, recs := range perShard {
		for r, rec := range recs {
			if len(rec) != 8 {
				return nil, fmt.Errorf("drybell: label record has %d bytes", len(rec))
			}
			idx := s + r*n
			if idx >= total {
				return nil, fmt.Errorf("drybell: label shard layout inconsistent")
			}
			out[idx] = math.Float64frombits(binary.LittleEndian.Uint64(rec))
		}
	}
	return out, nil
}
