// Package core is the Snorkel DryBell pipeline: it wires the labeling-
// function template library, the distributed execution substrate, the
// sampling-free generative label model, and the discriminative model
// trainers into the four-stage flow of Figure 4:
//
//  1. stage unlabeled examples on the distributed filesystem,
//  2. execute each labeling function as its own MapReduce job,
//  3. combine the votes with the generative model into probabilistic
//     training labels (persisted back to the filesystem),
//  4. train a servable discriminative model on those labels and stage it
//     for serving.
//
// The package is generic over the example type; content tasks use
// *corpus.Document, the real-time events task uses *corpus.Event.
//
// Each stage is exposed as its own context-aware function (StageExamples,
// ExecuteLFs, Denoise, PersistLabels) so callers can run them independently
// and resume mid-pipeline from filesystem state, matching the paper's
// loosely-coupled deployment. Run and RunContext compose all four. The
// supported public surface for all of this is pkg/drybell; this package is
// the implementation layer.
package core

import (
	"bytes"
	"context"
	"encoding/binary"
	"fmt"
	"iter"
	"math"
	"path"
	"runtime"
	"strings"
	"time"

	"repro/internal/dfs"
	"repro/internal/labelmodel"
	"repro/internal/lf"
	"repro/internal/mapreduce"
	"repro/internal/obs"
	"repro/internal/recordio"
	lfapi "repro/pkg/drybell/lf"
)

// Trainer selects the label-model optimizer by registry name.
type Trainer string

// Built-in trainers, pre-registered in the trainer registry.
const (
	// TrainerSamplingFree is the paper's contribution (§5.2): marginal
	// likelihood on a static compute graph, no sampling. The default, and
	// the reference implementation.
	TrainerSamplingFree Trainer = "samplingfree"
	// TrainerSamplingFreeFast is the vectorized production trainer: the
	// same objective optimized by full-batch projected Newton over the
	// compacted (deduplicated) vote matrix, converging to the reference
	// trainer's optimum in a handful of deterministic steps.
	TrainerSamplingFreeFast Trainer = "samplingfree-fast"
	// TrainerAnalytic is the same objective with hand-derived gradients.
	TrainerAnalytic Trainer = "analytic"
	// TrainerGibbs is the open-source Snorkel baseline.
	TrainerGibbs Trainer = "gibbs"
)

// Config configures a pipeline run.
type Config[T any] struct {
	// FS is the distributed filesystem; defaults to a fresh in-memory one.
	// Stage functions called separately must share an explicit FS (and
	// WorkDir) to see each other's state.
	FS dfs.FS
	// WorkDir prefixes all pipeline paths on FS. Default "drybell".
	WorkDir string
	// Encode/Decode convert examples to records. Required.
	Encode func(T) ([]byte, error)
	Decode func([]byte) (T, error)
	// Shards is the input sharding. Default 8.
	Shards int
	// Parallelism is the simulated cluster width. Default
	// runtime.GOMAXPROCS(0): one simulated compute node per usable CPU.
	Parallelism int
	// MaxAttempts is the per-task retry budget for labeling-function
	// MapReduce jobs: a task may fail this many times (worker crashes,
	// filesystem faults) before the run does. Default 3.
	MaxAttempts int
	// StragglerAfter enables deadline-based speculative re-execution in the
	// execution runtime: a task attempt still running after this duration
	// gets one speculative sibling, and the first commit wins. Zero
	// disables speculation.
	StragglerAfter time.Duration
	// Resume makes the pipeline recover a crashed run from filesystem state
	// instead of restarting from zero: staging is skipped when the corpus
	// is already committed, completed vote artifacts are loaded instead of
	// re-executed, and a partially executed vote job re-runs only the tasks
	// without committed checkpoints (see mapreduce.Job.Resume).
	Resume bool
	// Workers supplies an execution backend for labeling-function jobs in
	// place of the default in-process pool — typically a remote pool's slot
	// proxies (internal/mapreduce/remote), which dispatch every task to
	// registered worker processes over HTTP. The remote workers must carry
	// this pipeline's function set in their job-code registries (see
	// lf.RegisterVoteJobs). Nil keeps execution in-process.
	Workers []mapreduce.Worker
	// Obs, when non-nil, makes the run observable: spans are recorded into
	// Obs.Trace (one per stage, LF job, and task attempt) and stage/runtime
	// metrics into Obs.Metrics. After a traced RunObserved, the span timeline
	// is exported to the DFS as "<WorkDir>/_obs/trace.json" in Chrome
	// trace-event format (loadable in Perfetto). Nil means observability off;
	// the pipeline pays nothing.
	Obs *obs.Observer

	// knownExamples carries the staged record count from the staging stage
	// to the execute stage inside one RunObserved call, so the resume fast
	// path validates the vote artifact without re-scanning the corpus.
	knownExamples int
	// Trainer names a registered label-model trainer. Default sampling-free.
	Trainer Trainer
	// LabelModel are the label-model training options.
	LabelModel labelmodel.Options
	// DevLabels optionally carries dev-set ground truth aligned with the
	// input examples (Abstain = unlabeled). When present, the post-execution
	// LF analysis reports per-function empirical accuracy against it.
	DevLabels []labelmodel.Label
}

// WithDefaults validates the config and fills in defaults. Callers that run
// stages individually should normalize once and reuse the result, so the
// defaulted in-memory FS is shared across stages.
func (c Config[T]) WithDefaults() (Config[T], error) {
	if c.Encode == nil || c.Decode == nil {
		return c, fmt.Errorf("drybell: Config needs Encode and Decode")
	}
	if c.FS == nil {
		c.FS = dfs.NewMem()
	}
	if c.WorkDir == "" {
		c.WorkDir = "drybell"
	}
	if c.Shards <= 0 {
		c.Shards = 8
	}
	if c.Parallelism <= 0 {
		c.Parallelism = runtime.GOMAXPROCS(0)
	}
	if c.Trainer == "" {
		c.Trainer = TrainerSamplingFree
	}
	return c, nil
}

// ObsContext returns ctx carrying the config's tracer (if any), so spans
// recorded by stages called individually land in Config.Obs. RunObserved
// applies it automatically; callers composing stages by hand should too.
func (c Config[T]) ObsContext(ctx context.Context) context.Context {
	return c.Obs.Context(ctx)
}

// TracePath is the DFS path of the exported span timeline.
func (c Config[T]) TracePath() string { return path.Join(c.WorkDir, "_obs", "trace.json") }

// exportTrace writes the run's span timeline to the DFS as a Chrome
// trace-event artifact. Best effort: a run whose telemetry cannot be
// persisted is still a successful run.
func (c Config[T]) exportTrace() {
	if c.Obs == nil || c.Obs.Trace == nil {
		return
	}
	data, err := c.Obs.Trace.ChromeTrace()
	if err != nil {
		return
	}
	_ = c.FS.WriteFile(c.TracePath(), data)
}

// recordStageMetrics feeds one stage event into the run's metrics registry.
func (c Config[T]) recordStageMetrics(ev StageEvent) {
	if c.Obs == nil || c.Obs.Metrics == nil {
		return
	}
	reg := c.Obs.Metrics
	stage := obs.Label{Key: "stage", Value: string(ev.Stage)}
	reg.Histogram("pipeline_stage_seconds", "Pipeline stage wall time in seconds.",
		obs.DefLatencyBuckets, stage).ObserveDuration(ev.Duration)
	if ev.Err != nil {
		reg.Counter("pipeline_stage_errors_total", "Pipeline stages that failed.", stage).Inc()
	}
}

// InputBase is the DFS base path of the staged corpus.
func (c Config[T]) InputBase() string { return path.Join(c.WorkDir, "input/examples") }

// LabelsOutputBase is the DFS base path of the persisted probabilistic labels.
func (c Config[T]) LabelsOutputBase() string { return path.Join(c.WorkDir, "output/problabels") }

// VotesPrefix is the DFS prefix of vote state: ExecuteLFs maintains the
// columnar vote artifact at "<prefix>/votes", and legacy per-function
// recordio shard sets at "<prefix>/<lf-name>" remain loadable.
func (c Config[T]) VotesPrefix() string { return path.Join(c.WorkDir, "labels") }

// Result is the output of a pipeline run.
type Result struct {
	// Matrix is the assembled label matrix Λ.
	Matrix *labelmodel.Matrix
	// Model is the trained generative model.
	Model *labelmodel.Model
	// Posteriors are the probabilistic training labels Ỹ_i = P(Y_i=1|Λ_i),
	// aligned with the input examples.
	Posteriors []float64
	// LFReport describes per-function execution.
	LFReport *lf.Report
	// Analysis is the development-loop report over the matrix (coverage,
	// overlaps, conflicts, and empirical accuracy when Config.DevLabels are
	// present).
	Analysis *lfapi.Analysis
	// LabelsPath is the DFS base where the probabilistic labels were
	// persisted (sharded recordio of float64).
	LabelsPath string
	// Timings break down the run.
	Timings Timings
}

// Timings records per-stage wall time.
type Timings struct {
	Stage, Execute, TrainLabelModel, Persist time.Duration
}

// Examples adapts a slice to the streaming source shape the staged pipeline
// consumes.
func Examples[T any](xs []T) iter.Seq2[T, error] {
	return func(yield func(T, error) bool) {
		for _, x := range xs {
			if !yield(x, nil) {
				return
			}
		}
	}
}

// Run executes the weak-supervision pipeline over the examples and labeling
// functions, returning probabilistic training labels.
func Run[T any](cfg Config[T], examples []T, lfs []lfapi.LF[T]) (*Result, error) {
	return RunContext(context.Background(), cfg, Examples(examples), lfs)
}

// RunContext executes the four-stage pipeline over a streaming example
// source under a context. Cancellation is honored between stages and
// mid-stage during staging and labeling-function execution (between records
// inside MapReduce tasks); the denoise and persist stages check the context
// at stage entry.
func RunContext[T any](ctx context.Context, cfg Config[T], src iter.Seq2[T, error], lfs []lfapi.LF[T]) (*Result, error) {
	return RunObserved(ctx, cfg, src, lfs, nil)
}

// RunObserved is RunContext with a per-stage observer: hook (if non-nil)
// receives one StageEvent per completed or failed stage. This is the single
// pipeline composition; Run, RunContext, and pkg/drybell's Pipeline.Run all
// delegate here.
func RunObserved[T any](ctx context.Context, cfg Config[T], src iter.Seq2[T, error], lfs []lfapi.LF[T], hook StageHook) (*Result, error) {
	cfg, err := cfg.WithDefaults()
	if err != nil {
		return nil, err
	}
	ctx = cfg.ObsContext(ctx)
	ctx, span := obs.StartSpan(ctx, "pipeline.run", obs.String("workdir", cfg.WorkDir))
	res, err := runPipeline(ctx, cfg, src, lfs, hook)
	span.EndErr(err)
	cfg.exportTrace()
	return res, err
}

// runPipeline is RunObserved's body, separated so the root span brackets
// exactly one execution and the trace artifact exports after it closes.
// cfg arrives defaulted.
func runPipeline[T any](ctx context.Context, cfg Config[T], src iter.Seq2[T, error], lfs []lfapi.LF[T], hook StageHook) (*Result, error) {
	var err error
	// Validate the function set before staging a single record: duplicate
	// names would silently overwrite each other's vote shards on the DFS,
	// and a doomed run should not commit a corpus first.
	if err := lfapi.ValidateNames(lfs); err != nil {
		return nil, fmt.Errorf("drybell: %w", err)
	}
	emit := func(ev StageEvent) {
		cfg.recordStageMetrics(ev)
		if hook != nil {
			hook(ev)
		}
	}
	res := &Result{}

	// Stage 1: write the corpus to the distributed filesystem. A resuming
	// pipeline trusts a corpus an earlier run already committed — stages
	// exchange data only through the filesystem (§5.4), so its presence is
	// the checkpoint — and skips the encode/stage pass entirely.
	t0 := time.Now() //drybellvet:wallclock — stage timing for events/Result.Timings only
	var n int
	stageResumed := false
	if cfg.Resume {
		// The cheap path is the count sidecar staging wrote (validated
		// against the committed shards by Stat); a corpus staged by an older
		// binary without one still resumes via the full scan.
		if staged, serr := mapreduce.ReadStagedCount(cfg.FS, cfg.InputBase()); serr == nil {
			n, stageResumed = staged, true
		} else if staged, serr := mapreduce.CountRecords(cfg.FS, cfg.InputBase()); serr == nil && staged > 0 {
			n, stageResumed = staged, true
		}
	}
	if !stageResumed {
		n, err = StageExamples(ctx, cfg, src)
	}
	emit(StageEvent{Stage: StageStage, Start: t0, Duration: time.Since(t0), Examples: n, Resumed: stageResumed, Err: err})
	if err != nil {
		return nil, err
	}
	res.Timings.Stage = time.Since(t0)

	// Stage 2: execute the labeling functions on the distributed runtime.
	t1 := time.Now() //drybellvet:wallclock — stage timing for events/Result.Timings only
	cfg.knownExamples = n
	res.Matrix, res.LFReport, err = ExecuteLFs(ctx, cfg, lfs)
	ev := StageEvent{Stage: StageExecuteLFs, Start: t1, Duration: time.Since(t1), Examples: n, Report: res.LFReport, Err: err}
	if res.LFReport != nil {
		ev.Resumed = res.LFReport.ResumedFromVotes
	}
	emit(ev)
	if err != nil {
		return nil, err
	}
	res.Timings.Execute = time.Since(t1)

	// Stage 2b: the development-loop analysis over the fresh matrix —
	// coverage, overlaps, conflicts, and accuracy against any dev labels.
	ta := time.Now() //drybellvet:wallclock — stage timing for events/Result.Timings only
	_, aspan := obs.StartSpan(ctx, "stage.analyze")
	res.Analysis, err = lfapi.Analyze(res.Matrix, lfapi.Metas(lfs), cfg.DevLabels)
	aspan.EndErr(err)
	emit(StageEvent{Stage: StageAnalyze, Start: ta, Duration: time.Since(ta), Examples: n, Analysis: res.Analysis, Err: err})
	if err != nil {
		return nil, fmt.Errorf("drybell: analyze labeling functions: %w", err)
	}

	// Stage 3: denoise with the generative model.
	t2 := time.Now() //drybellvet:wallclock — stage timing for events/Result.Timings only
	res.Model, res.Posteriors, err = Denoise(ctx, cfg.Trainer, res.Matrix, cfg.LabelModel)
	emit(StageEvent{Stage: StageDenoise, Start: t2, Duration: time.Since(t2), Examples: len(res.Posteriors), Err: err})
	if err != nil {
		return nil, err
	}
	res.Timings.TrainLabelModel = time.Since(t2)

	// Stage 4: persist probabilistic labels for the production ML systems.
	t3 := time.Now() //drybellvet:wallclock — stage timing for events/Result.Timings only
	res.LabelsPath = cfg.LabelsOutputBase()
	err = PersistLabels(ctx, cfg.FS, res.LabelsPath, res.Posteriors, cfg.Shards)
	emit(StageEvent{Stage: StagePersist, Start: t3, Duration: time.Since(t3), Examples: len(res.Posteriors), LabelsPath: res.LabelsPath, Err: err})
	if err != nil {
		return nil, err
	}
	res.Timings.Persist = time.Since(t3)
	return res, nil
}

// StageExamples encodes a streaming example source onto the distributed
// filesystem as the pipeline's sharded input (stage 1), returning the number
// of examples staged. The source is consumed exactly once and never
// materialized as a slice. An empty source is an error, and nothing is
// committed for it.
func StageExamples[T any](ctx context.Context, cfg Config[T], src iter.Seq2[T, error]) (int, error) {
	cfg, err := cfg.WithDefaults()
	if err != nil {
		return 0, err
	}
	if src == nil {
		return 0, fmt.Errorf("drybell: nil example source")
	}
	i := 0
	records := func(yield func([]byte, error) bool) {
		for x, err := range src {
			if err != nil {
				yield(nil, fmt.Errorf("drybell: example source: %w", err))
				return
			}
			rec, err := cfg.Encode(x)
			if err != nil {
				yield(nil, fmt.Errorf("drybell: encode example %d: %w", i, err))
				return
			}
			if !yield(rec, nil) {
				return
			}
			i++
		}
	}
	return StageRecords(ctx, cfg, records)
}

// StageRecords stages already-encoded records directly, skipping the codec —
// the fast path for corpora that are already in the pipeline's record format
// (e.g. validated JSONL dumps). Errors yielded by the source are returned
// as-is.
func StageRecords[T any](ctx context.Context, cfg Config[T], src iter.Seq2[[]byte, error]) (int, error) {
	cfg, err := cfg.WithDefaults()
	if err != nil {
		return 0, err
	}
	if src == nil {
		return 0, fmt.Errorf("drybell: nil record source")
	}
	_, span := obs.StartSpan(ctx, "stage.input")
	n, err := stageRecords(ctx, cfg, src)
	span.SetAttr(obs.Int("examples", n))
	span.EndErr(err)
	return n, err
}

func stageRecords[T any](ctx context.Context, cfg Config[T], src iter.Seq2[[]byte, error]) (int, error) {
	w, err := mapreduce.NewInputWriter(cfg.FS, cfg.InputBase(), cfg.Shards)
	if err != nil {
		return 0, err
	}
	for rec, err := range src {
		if err != nil {
			return 0, err
		}
		if err := ctx.Err(); err != nil {
			return 0, fmt.Errorf("drybell: stage input: %w", err)
		}
		if err := w.Append(rec); err != nil {
			return 0, fmt.Errorf("drybell: stage input: %w", err)
		}
	}
	// Refuse to commit an empty shard set: it would look like a validly
	// staged corpus to a later resume and mask the upstream mistake.
	if w.Count() == 0 {
		return 0, fmt.Errorf("drybell: no examples")
	}
	if err := w.Commit(); err != nil {
		return 0, fmt.Errorf("drybell: stage input: %w", err)
	}
	return w.Count(), nil
}

// ExecuteLFs runs every labeling function as its own MapReduce job over the
// staged corpus (stage 2) and assembles the label matrix. It requires a
// prior StageExamples with the same FS and WorkDir — possibly from another
// process, since the staged corpus lives on the filesystem.
func ExecuteLFs[T any](ctx context.Context, cfg Config[T], lfs []lfapi.LF[T]) (*labelmodel.Matrix, *lf.Report, error) {
	cfg, err := cfg.WithDefaults()
	if err != nil {
		return nil, nil, err
	}
	mx, report, err := cfg.executor().ExecuteContext(cfg.ObsContext(ctx), lfs)
	// Attempt-outcome counters flow into the shared registry here so both
	// the composed pipeline and a standalone ExecuteLFs report through the
	// same pipe as the serving tier.
	if report != nil && cfg.Obs != nil && cfg.Obs.Metrics != nil {
		reg := cfg.Obs.Metrics
		reg.Counter("pipeline_task_attempts_total",
			"MapReduce task attempts launched by labeling-function execution, including retries and speculative attempts.").
			Add(int64(report.TaskAttempts))
		reg.Counter("pipeline_speculative_attempts_total",
			"Straggler-triggered speculative task attempts.").
			Add(int64(report.SpeculativeAttempts))
		reg.Counter("pipeline_tasks_resumed_total",
			"Tasks satisfied from a prior run's checkpoints instead of re-executing.").
			Add(int64(report.TasksResumed))
	}
	return mx, report, err
}

// LoadMatrix reassembles the label matrix from vote state a previous
// ExecuteLFs left on the filesystem, without re-running anything. Column j
// holds the votes of names[j]. The columnar artifact is preferred; legacy
// per-function shard layouts load through the compatibility reader.
func LoadMatrix[T any](cfg Config[T], names []string) (*labelmodel.Matrix, error) {
	cfg, err := cfg.WithDefaults()
	if err != nil {
		return nil, err
	}
	return cfg.executor().LoadMatrix(names)
}

func (c Config[T]) executor() *lf.Executor[T] {
	return &lf.Executor[T]{
		FS:             c.FS,
		InputBase:      c.InputBase(),
		OutputPrefix:   c.VotesPrefix(),
		Decode:         c.Decode,
		Parallelism:    c.Parallelism,
		MaxAttempts:    c.MaxAttempts,
		StragglerAfter: c.StragglerAfter,
		Resume:         c.Resume,
		KnownExamples:  c.knownExamples,
		Workers:        c.Workers,
	}
}

// Denoise trains the named generative label model on the assembled matrix
// (stage 3) and returns it with the probabilistic training labels. An empty
// trainer name selects the sampling-free default; any other name must be in
// the trainer registry.
func Denoise(ctx context.Context, trainer Trainer, matrix *labelmodel.Matrix, opts labelmodel.Options) (*labelmodel.Model, []float64, error) {
	if trainer == "" {
		trainer = TrainerSamplingFree
	}
	_, span := obs.StartSpan(ctx, "stage.denoise", obs.String("trainer", string(trainer)))
	fn, ok := LookupTrainer(trainer)
	if !ok {
		err := fmt.Errorf("drybell: unknown trainer %q (registered: %s)", trainer, trainerList())
		span.EndErr(err)
		return nil, nil, err
	}
	if err := ctx.Err(); err != nil {
		err = fmt.Errorf("drybell: train label model: %w", err)
		span.EndErr(err)
		return nil, nil, err
	}
	lm, err := fn(matrix, opts)
	if err != nil {
		err = fmt.Errorf("drybell: train label model: %w", err)
		span.EndErr(err)
		return nil, nil, err
	}
	span.End()
	return lm, lm.Posteriors(matrix), nil
}

func trainerList() string {
	names := TrainerNames()
	parts := make([]string, len(names))
	for i, n := range names {
		parts[i] = string(n)
	}
	return strings.Join(parts, ", ")
}

// PersistLabels writes the probabilistic labels back to the filesystem
// (stage 4) as the hand-off to the production training systems.
func PersistLabels(ctx context.Context, fs dfs.FS, base string, labels []float64, shards int) error {
	_, span := obs.StartSpan(ctx, "stage.persist", obs.Int("labels", len(labels)))
	if err := ctx.Err(); err != nil {
		err = fmt.Errorf("drybell: persist labels: %w", err)
		span.EndErr(err)
		return err
	}
	if err := WriteLabels(fs, base, labels, shards); err != nil {
		err = fmt.Errorf("drybell: persist labels: %w", err)
		span.EndErr(err)
		return err
	}
	span.End()
	return nil
}

// WriteLabels persists probabilistic labels as sharded recordio of
// little-endian float64, the hand-off format to the training systems.
func WriteLabels(fs dfs.FS, base string, labels []float64, shards int) error {
	records := make([][]byte, len(labels))
	for i, p := range labels {
		if p < 0 || p > 1 || math.IsNaN(p) {
			return fmt.Errorf("drybell: label %d = %v out of [0,1]", i, p)
		}
		var buf [8]byte
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(p))
		records[i] = buf[:]
	}
	return mapreduce.WriteInput(fs, base, records, shards)
}

// ReadLabels loads labels persisted by WriteLabels, restoring input order.
func ReadLabels(fs dfs.FS, base string) ([]float64, error) {
	shards, err := dfs.ListShards(fs, base)
	if err != nil {
		return nil, err
	}
	n := len(shards)
	perShard := make([][][]byte, n)
	total := 0
	for s, shard := range shards {
		data, err := fs.ReadFile(shard)
		if err != nil {
			return nil, err
		}
		recs, err := recordio.ReadAll(bytes.NewReader(data))
		if err != nil {
			return nil, fmt.Errorf("drybell: labels shard %s: %w", shard, err)
		}
		perShard[s] = recs
		total += len(recs)
	}
	out := make([]float64, total)
	for s, recs := range perShard {
		for r, rec := range recs {
			if len(rec) != 8 {
				return nil, fmt.Errorf("drybell: label record has %d bytes", len(rec))
			}
			idx := s + r*n
			if idx >= total {
				return nil, fmt.Errorf("drybell: label shard layout inconsistent")
			}
			out[idx] = math.Float64frombits(binary.LittleEndian.Uint64(rec))
		}
	}
	return out, nil
}
