// Incremental pipeline: corpus deltas, delta execution, warm-start training.
//
// A batch run stages the whole corpus and re-derives everything. The
// incremental path instead stages each corpus change as a delta generation
// (StageDelta), records it in a corpus manifest next to the staged input,
// and IncrementalRun advances the pipeline by exactly the pending deltas:
// labeling functions execute only over delta shards (lf.ExecuteDelta,
// publishing vote generations), the label model warm-starts from the
// previous run's state (labelmodel.TrainSamplingFreeFastWarm), and the
// refreshed probabilistic labels are persisted in full. Corpus delta n
// produces vote generation n; the base corpus and the flat vote artifact
// are both "generation 0", so the two ledgers advance in lockstep and the
// vote store itself records how far execution has progressed.
package core

import (
	"context"
	"encoding/json"
	"fmt"
	"iter"
	"path"
	"time"

	"repro/internal/labelmodel"
	"repro/internal/lf"
	"repro/internal/mapreduce"
	"repro/internal/obs"
	lfapi "repro/pkg/drybell/lf"
)

// CorpusGeneration is one staged corpus delta, recorded in the corpus
// manifest. The base corpus (StageExamples) is implicitly generation 0.
type CorpusGeneration struct {
	// Gen is the delta's 1-based generation number; the vote generation its
	// execution publishes carries the same number.
	Gen int `json:"gen"`
	// Records is the number of documents staged in this delta (zero for a
	// deletions-only delta).
	Records int `json:"records"`
	// StartRow is the absolute row index (staging order) where this delta's
	// rows begin. Appends use the total row count at staging time; rewrites
	// of existing documents point inside the covered range.
	StartRow int `json:"start_row"`
	// Deleted lists absolute row indices this delta tombstones.
	Deleted []int `json:"deleted,omitempty"`
	// StagedAtUnix is when the delta was staged, for staleness accounting.
	StagedAtUnix int64 `json:"staged_at_unix"`
}

// corpusManifest is the JSON document at CorpusManifestPath.
type corpusManifest struct {
	Generations []CorpusGeneration `json:"generations"`
}

// CorpusManifestPath is the DFS path of the corpus delta manifest.
func (c Config[T]) CorpusManifestPath() string {
	return path.Join(c.WorkDir, "input", "_corpus.json")
}

// deltaInputBase is the staged input base of corpus delta gen.
func (c Config[T]) deltaInputBase(gen int) string {
	return path.Join(c.WorkDir, "input", "_delta", fmt.Sprintf("%05d", gen), "examples")
}

// CorpusGenerations reads the staged corpus deltas in generation order. A
// corpus staged before any delta (no manifest) has none.
func CorpusGenerations[T any](cfg Config[T]) ([]CorpusGeneration, error) {
	cfg, err := cfg.WithDefaults()
	if err != nil {
		return nil, err
	}
	return readCorpusManifest(cfg)
}

func readCorpusManifest[T any](cfg Config[T]) ([]CorpusGeneration, error) {
	raw, err := cfg.FS.ReadFile(cfg.CorpusManifestPath())
	if err != nil {
		// No manifest: no deltas have been staged yet.
		return nil, nil
	}
	var m corpusManifest
	if err := json.Unmarshal(raw, &m); err != nil {
		return nil, fmt.Errorf("drybell: corpus manifest %s is corrupt: %w", cfg.CorpusManifestPath(), err)
	}
	for i, g := range m.Generations {
		if g.Gen != i+1 {
			return nil, fmt.Errorf("drybell: corpus manifest %s entry %d claims generation %d", cfg.CorpusManifestPath(), i, g.Gen)
		}
	}
	return m.Generations, nil
}

func writeCorpusManifest[T any](cfg Config[T], gens []CorpusGeneration) error {
	raw, err := json.Marshal(corpusManifest{Generations: gens})
	if err != nil {
		return fmt.Errorf("drybell: encode corpus manifest: %w", err)
	}
	dst := cfg.CorpusManifestPath()
	tmp := dst + ".tmp"
	if err := cfg.FS.WriteFile(tmp, raw); err != nil {
		return fmt.Errorf("drybell: write corpus manifest: %w", err)
	}
	if err := cfg.FS.Rename(tmp, dst); err != nil {
		return fmt.Errorf("drybell: promote corpus manifest: %w", err)
	}
	return nil
}

// CorpusTotalRows is the corpus's absolute row count in staging order: the
// base corpus plus every appended delta, before tombstone compaction. This
// is where the next append's StartRow goes.
func CorpusTotalRows[T any](cfg Config[T]) (int, error) {
	cfg, err := cfg.WithDefaults()
	if err != nil {
		return 0, err
	}
	return corpusTotalRows(cfg)
}

func corpusTotalRows[T any](cfg Config[T]) (int, error) {
	base, err := mapreduce.ReadStagedCount(cfg.FS, cfg.InputBase())
	if err != nil {
		if base, err = mapreduce.CountRecords(cfg.FS, cfg.InputBase()); err != nil {
			return 0, fmt.Errorf("drybell: no staged base corpus at %s: %w", cfg.InputBase(), err)
		}
	}
	gens, err := readCorpusManifest(cfg)
	if err != nil {
		return 0, err
	}
	total := base
	for _, g := range gens {
		if end := g.StartRow + g.Records; end > total {
			total = end
		}
	}
	return total, nil
}

// StageDelta stages a corpus delta — new documents appended after the rows
// staged so far, plus any tombstoned rows — as the next corpus generation,
// and records it in the corpus manifest. A nil source with non-empty deleted
// stages a deletions-only delta. Returns the recorded generation.
//
// Rewrites of existing documents are staged by StageDeltaAt with an explicit
// start row inside the covered range.
func StageDelta[T any](ctx context.Context, cfg Config[T], src iter.Seq2[T, error], deleted []int) (CorpusGeneration, error) {
	cfg, err := cfg.WithDefaults()
	if err != nil {
		return CorpusGeneration{}, err
	}
	total, err := corpusTotalRows(cfg)
	if err != nil {
		return CorpusGeneration{}, err
	}
	return stageDeltaAt(ctx, cfg, src, total, deleted)
}

// StageDeltaAt is StageDelta with an explicit start row: the delta's
// documents supersede rows [startRow, startRow+n) of the staging order —
// how changed documents re-enter the pipeline.
func StageDeltaAt[T any](ctx context.Context, cfg Config[T], src iter.Seq2[T, error], startRow int, deleted []int) (CorpusGeneration, error) {
	cfg, err := cfg.WithDefaults()
	if err != nil {
		return CorpusGeneration{}, err
	}
	total, err := corpusTotalRows(cfg)
	if err != nil {
		return CorpusGeneration{}, err
	}
	if startRow < 0 || startRow > total {
		return CorpusGeneration{}, fmt.Errorf("drybell: delta start row %d outside the %d staged rows", startRow, total)
	}
	return stageDeltaAt(ctx, cfg, src, startRow, deleted)
}

func stageDeltaAt[T any](ctx context.Context, cfg Config[T], src iter.Seq2[T, error], startRow int, deleted []int) (CorpusGeneration, error) {
	_, span := obs.StartSpan(ctx, "stage.delta", obs.Int("start_row", startRow), obs.Int("deleted", len(deleted)))
	gen, err := stageDelta(ctx, cfg, src, startRow, deleted)
	span.SetAttr(obs.Int("generation", gen.Gen), obs.Int("records", gen.Records))
	span.EndErr(err)
	return gen, err
}

func stageDelta[T any](ctx context.Context, cfg Config[T], src iter.Seq2[T, error], startRow int, deleted []int) (CorpusGeneration, error) {
	if src == nil && len(deleted) == 0 {
		return CorpusGeneration{}, fmt.Errorf("drybell: delta with no documents and no deletions")
	}
	gens, err := readCorpusManifest(cfg)
	if err != nil {
		return CorpusGeneration{}, err
	}
	g := CorpusGeneration{
		Gen:          len(gens) + 1,
		StartRow:     startRow,
		Deleted:      append([]int(nil), deleted...),
		StagedAtUnix: time.Now().Unix(), //drybellvet:wallclock — staleness bookkeeping, never in artifacts
	}
	if src != nil {
		// Stage the delta's shards exactly like a base corpus, under the
		// delta's own input base, so the execution layer consumes them
		// through the unchanged staging contract.
		n, err := stageAt(ctx, cfg, src, cfg.deltaInputBase(g.Gen))
		if err != nil {
			return CorpusGeneration{}, err
		}
		g.Records = n
	}
	if err := writeCorpusManifest(cfg, append(gens, g)); err != nil {
		return CorpusGeneration{}, err
	}
	return g, nil
}

// stageAt stages an example source at an explicit input base (stageRecords
// always writes to cfg.InputBase()).
func stageAt[T any](ctx context.Context, cfg Config[T], src iter.Seq2[T, error], base string) (int, error) {
	w, err := mapreduce.NewInputWriter(cfg.FS, base, cfg.Shards)
	if err != nil {
		return 0, err
	}
	i := 0
	for x, err := range src {
		if err != nil {
			return 0, fmt.Errorf("drybell: delta source: %w", err)
		}
		if err := ctx.Err(); err != nil {
			return 0, fmt.Errorf("drybell: stage delta: %w", err)
		}
		rec, err := cfg.Encode(x)
		if err != nil {
			return 0, fmt.Errorf("drybell: encode delta example %d: %w", i, err)
		}
		if err := w.Append(rec); err != nil {
			return 0, fmt.Errorf("drybell: stage delta: %w", err)
		}
		i++
	}
	if w.Count() == 0 {
		return 0, fmt.Errorf("drybell: delta staged no examples")
	}
	if err := w.Commit(); err != nil {
		return 0, fmt.Errorf("drybell: stage delta: %w", err)
	}
	return w.Count(), nil
}

// IncrementalResult is the output of one IncrementalRun.
type IncrementalResult struct {
	// Matrix is the compacted full view after applying the pending deltas.
	Matrix *labelmodel.Matrix
	// Model is the warm-start-trained generative model.
	Model *labelmodel.Model
	// Posteriors are the refreshed probabilistic labels over the full view.
	Posteriors []float64
	// State feeds the next IncrementalRun's warm start.
	State *labelmodel.TrainState
	// Generations lists the vote generations published by this run, in
	// order. Empty means the vote store was already caught up (the run
	// retrained only if Retrained is set).
	Generations []int
	// DeltaExamples counts documents executed by this run's delta jobs.
	DeltaExamples int
	// DeltaTaskAttempts counts task attempts across this run's delta jobs —
	// the "only delta tasks ran" witness.
	DeltaTaskAttempts int
	// WarmIterations is the Newton iteration count of the warm-start
	// training run.
	WarmIterations int
	// WarmStarted reports whether training resumed from a previous state
	// (false on the α-less first run).
	WarmStarted bool
	// StalenessSeconds is the age of the oldest pending delta at run start —
	// how far behind the corpus the labels were before this run.
	StalenessSeconds float64
	// LabelsPath is the DFS base of the persisted labels.
	LabelsPath string
}

// IncrementalRun advances the pipeline by the staged-but-unexecuted corpus
// deltas: each pending delta runs through lf.ExecuteDelta (labeling
// functions over delta shards only, one vote generation per delta), the
// label model warm-starts from prev, and the refreshed labels are persisted
// over the full corpus. It requires a completed base run (Run/RunContext
// with the same FS and WorkDir) to have published the flat vote artifact.
//
// Training always uses the sampling-free fast trainer — warm starting is
// its capability — regardless of Config.Trainer; warm and cold runs produce
// the identical model (the optimizer is a pure function of the vote matrix;
// see labelmodel's equivalence tests). prev may be nil (first incremental
// run, or after a process restart without persisted state): training still
// covers the full view, only the warm start's compaction reuse is lost.
func IncrementalRun[T any](ctx context.Context, cfg Config[T], lfs []lfapi.LF[T], prev *labelmodel.TrainState) (*IncrementalResult, error) {
	cfg, err := cfg.WithDefaults()
	if err != nil {
		return nil, err
	}
	if err := lfapi.ValidateNames(lfs); err != nil {
		return nil, fmt.Errorf("drybell: %w", err)
	}
	ctx = cfg.ObsContext(ctx)
	ctx, span := obs.StartSpan(ctx, "pipeline.incremental",
		obs.String("workdir", cfg.WorkDir), obs.Int("functions", len(lfs)))
	res, err := incrementalRun(ctx, cfg, lfs, prev)
	if res != nil {
		span.SetAttr(
			obs.Int("delta_examples", res.DeltaExamples),
			obs.Int("delta_task_attempts", res.DeltaTaskAttempts),
			obs.Int("generations", len(res.Generations)),
			obs.Int("warm_iterations", res.WarmIterations),
			obs.Bool("warm_started", res.WarmStarted))
	}
	span.EndErr(err)
	return res, err
}

func incrementalRun[T any](ctx context.Context, cfg Config[T], lfs []lfapi.LF[T], prev *labelmodel.TrainState) (*IncrementalResult, error) {
	exec := cfg.executor()
	votesBase := path.Join(cfg.VotesPrefix(), "votes")
	if !lf.HasVotes(cfg.FS, votesBase) && !lf.HasGenerations(cfg.FS, votesBase) {
		return nil, fmt.Errorf("drybell: incremental run needs a completed base run (no vote artifact at %s)", votesBase)
	}
	gens, err := readCorpusManifest(cfg)
	if err != nil {
		return nil, err
	}
	executed, err := lf.LatestGeneration(cfg.FS, votesBase)
	if err != nil {
		return nil, err
	}

	res := &IncrementalResult{}
	// appendOnly tracks whether every pending delta purely appends rows: only
	// then does the previous compaction's prefix survive verbatim, making the
	// O(delta) ExtendCompact path safe. Rewrites (StartRow inside the rows
	// staged before the delta) and deletions reshape already-compacted rows,
	// so they drop training to the α-only warm start.
	appendOnly := true
	baseRows, err := mapreduce.ReadStagedCount(cfg.FS, cfg.InputBase())
	if err != nil {
		if baseRows, err = mapreduce.CountRecords(cfg.FS, cfg.InputBase()); err != nil {
			return nil, fmt.Errorf("drybell: no staged base corpus at %s: %w", cfg.InputBase(), err)
		}
	}
	totalSoFar := baseRows
	now := time.Now() //drybellvet:wallclock — staleness metric only, never in artifacts
	for _, g := range gens {
		pending := g.Gen > executed
		if pending && (len(g.Deleted) > 0 || g.StartRow < totalSoFar) {
			appendOnly = false
		}
		if end := g.StartRow + g.Records; end > totalSoFar {
			totalSoFar = end
		}
		if !pending {
			continue
		}
		if age := now.Unix() - g.StagedAtUnix; float64(age) > res.StalenessSeconds {
			res.StalenessSeconds = float64(age)
		}
		d := lf.Delta{StartRow: g.StartRow, Deleted: g.Deleted}
		if g.Records > 0 {
			d.InputBase = cfg.deltaInputBase(g.Gen)
		}
		_, report, gen, err := exec.ExecuteDelta(ctx, lfs, d)
		if err != nil {
			return nil, fmt.Errorf("drybell: execute delta generation %d: %w", g.Gen, err)
		}
		if gen != g.Gen {
			return nil, fmt.Errorf("drybell: corpus delta %d published vote generation %d — ledgers out of step", g.Gen, gen)
		}
		res.Generations = append(res.Generations, gen)
		res.DeltaExamples += report.Examples
		res.DeltaTaskAttempts += report.TaskAttempts
	}

	names := make([]string, len(lfs))
	//drybellvet:tightloop — bounded by the function set, in-memory name collection
	for j, f := range lfs {
		names[j] = f.LFMeta().Name
	}
	mx, err := exec.LoadMatrix(names)
	if err != nil {
		return nil, err
	}
	res.Matrix = mx

	if prev != nil && prev.Compact != nil && !appendOnly {
		// Keep the α warm start but drop the compaction: the view's rows
		// shifted or changed under it.
		prev = &labelmodel.TrainState{Alpha: prev.Alpha, Iterations: prev.Iterations}
	}
	model, state, err := labelmodel.TrainSamplingFreeFastWarm(mx, cfg.LabelModel, prev)
	if err != nil {
		return nil, fmt.Errorf("drybell: warm-start train: %w", err)
	}
	res.Model = model
	res.State = state
	res.WarmIterations = state.Iterations
	res.WarmStarted = prev != nil && len(prev.Alpha) > 0
	res.Posteriors = model.Posteriors(mx)

	res.LabelsPath = cfg.LabelsOutputBase()
	if err := PersistLabels(ctx, cfg.FS, res.LabelsPath, res.Posteriors, cfg.Shards); err != nil {
		return nil, err
	}

	if cfg.Obs != nil && cfg.Obs.Metrics != nil {
		reg := cfg.Obs.Metrics
		reg.Counter("pipeline_incremental_runs_total",
			"Completed incremental pipeline runs.").Inc()
		reg.Counter("pipeline_incremental_delta_examples_total",
			"Documents executed by incremental delta jobs.").Add(int64(res.DeltaExamples))
		reg.Counter("pipeline_incremental_task_attempts_total",
			"Task attempts launched by incremental delta jobs.").Add(int64(res.DeltaTaskAttempts))
		reg.Gauge("pipeline_incremental_staleness_seconds",
			"Age of the oldest pending corpus delta when the last incremental run started.").Set(res.StalenessSeconds)
		reg.Gauge("pipeline_incremental_warm_iterations",
			"Newton iterations spent by the last warm-start training run.").Set(float64(res.WarmIterations))
	}
	return res, nil
}
