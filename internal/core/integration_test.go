package core

import (
	"testing"
	"time"

	"repro/internal/apps"
	"repro/internal/corpus"
	"repro/internal/dfs"
	"repro/internal/labelmodel"
	"repro/internal/serving"
)

// TestProductPipelineOnDiskDFS exercises the full product case study over a
// real disk-backed distributed filesystem: stage, per-LF MapReduce jobs,
// generative model, persisted probabilistic labels, discriminative
// training, serving-registry staging, and a rollback — every subsystem in
// one flow.
func TestProductPipelineOnDiskDFS(t *testing.T) {
	disk, err := dfs.NewDisk(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	docs, err := corpus.GenerateProduct(corpus.ProductSpec{NumDocs: 5000, PositiveRate: 0.05, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	sp, err := corpus.MakeSplit(len(docs), 600, 1000, 10)
	if err != nil {
		t.Fatal(err)
	}
	train := corpus.Select(docs, sp.Train)
	dev := corpus.Select(docs, sp.Dev)
	test := corpus.Select(docs, sp.Test)

	cfg := Config[*corpus.Document]{
		FS:      disk,
		WorkDir: "pipeline/product",
		Encode:  func(d *corpus.Document) ([]byte, error) { return d.Marshal() },
		Decode:  corpus.UnmarshalDocument,
		Trainer: TrainerSamplingFree,
		LabelModel: labelmodel.Options{
			Steps: 400, BatchSize: 64, LR: 0.05, Seed: 5,
		},
	}
	res, err := Run(cfg, train, apps.ProductLFs(nil, 1))
	if err != nil {
		t.Fatal(err)
	}

	// Labels must be durable on disk and reload in order.
	labels, err := ReadLabels(disk, res.LabelsPath)
	if err != nil {
		t.Fatal(err)
	}
	if len(labels) != len(train) {
		t.Fatalf("persisted %d labels for %d examples", len(labels), len(train))
	}

	// The columnar vote artifact is durable on disk and restores the exact
	// matrix (every LF's column) without re-running any job.
	if _, err := dfs.ListShards(disk, "pipeline/product/labels/votes"); err != nil {
		t.Errorf("columnar vote artifact missing: %v", err)
	}
	names := make([]string, len(res.LFReport.PerLF))
	for i, rep := range res.LFReport.PerLF {
		names[i] = rep.Name
	}
	reloaded, err := LoadMatrix(cfg, names)
	if err != nil {
		t.Fatalf("reload matrix from columnar votes: %v", err)
	}
	if reloaded.NumExamples() != res.Matrix.NumExamples() || reloaded.NumFuncs() != res.Matrix.NumFuncs() {
		t.Fatalf("reloaded matrix is %d×%d, want %d×%d",
			reloaded.NumExamples(), reloaded.NumFuncs(), res.Matrix.NumExamples(), res.Matrix.NumFuncs())
	}
	for i := 0; i < reloaded.NumExamples(); i++ {
		for j := 0; j < reloaded.NumFuncs(); j++ {
			if reloaded.At(i, j) != res.Matrix.At(i, j) {
				t.Fatalf("reloaded vote [%d,%d] = %d, want %d", i, j, reloaded.At(i, j), res.Matrix.At(i, j))
			}
		}
	}

	clf, err := TrainContentClassifier(train, res.Posteriors, dev, ContentTrainConfig{
		Iterations: 10 * len(train), Seed: 6,
	})
	if err != nil {
		t.Fatal(err)
	}
	met, err := clf.Evaluate(test)
	if err != nil {
		t.Fatal(err)
	}
	if met.F1 < 0.6 {
		t.Errorf("product F1 on disk pipeline = %.3f, want ≥ 0.6", met.F1)
	}

	// Serving lifecycle: stage v1, stage v2, promote v2, roll back to v1.
	reg := serving.NewRegistry()
	v1, err := clf.StageForServing(reg, "product-clf", test[:40], 100*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := clf.StageForServing(reg, "product-clf", test[:40], 100*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	live, err := reg.Live("product-clf")
	if err != nil || live.Version != v1.Version+1 {
		t.Fatalf("live after second staging = %+v, %v", live, err)
	}
	if err := reg.Rollback("product-clf"); err != nil {
		t.Fatal(err)
	}
	live, _ = reg.Live("product-clf")
	if live.Version != v1.Version {
		t.Errorf("rollback landed on version %d, want %d", live.Version, v1.Version)
	}
}

// TestPipelineDeterministicAcrossRuns: identical config and corpus must
// reproduce identical probabilistic labels (the whole pipeline is seeded).
func TestPipelineDeterministicAcrossRuns(t *testing.T) {
	docs, err := corpus.GenerateTopic(corpus.TopicSpec{NumDocs: 1500, PositiveRate: 0.05, Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	runOnce := func() []float64 {
		cfg := topicConfig(dfs.NewMem())
		cfg.LabelModel.Steps = 150
		res, err := Run(cfg, docs, apps.TopicLFs(nil, 0.02, 1))
		if err != nil {
			t.Fatal(err)
		}
		return res.Posteriors
	}
	a, b := runOnce(), runOnce()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("posterior %d differs across identical runs: %v vs %v", i, a[i], b[i])
		}
	}
}
