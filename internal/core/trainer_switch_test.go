package core

import (
	"context"
	"math"
	"testing"

	"repro/internal/labelmodel"
)

// TestDenoiseTrainerSwitchEquivalence: the pipeline's denoise stage must
// produce interchangeable labels whether it runs the reference trainer or
// the vectorized fast trainer — the registry wiring plus the equivalence
// contract proven in detail by the labelmodel package's own tests.
func TestDenoiseTrainerSwitchEquivalence(t *testing.T) {
	mx, _, err := labelmodel.Synthesize(labelmodel.SynthSpec{
		NumExamples:   2000,
		PriorPositive: 0.5,
		Accuracies:    []float64{0.9, 0.8, 0.85, 0.75, 0.7},
		Propensities:  []float64{0.45, 0.4, 0.3, 0.25, 0.35},
		Seed:          23,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Full-batch options converge both trainers to the shared optimum.
	opts := labelmodel.Options{Steps: 4000, BatchSize: mx.NumExamples(), LR: 0.05, Seed: 7}
	ctx := context.Background()
	_, ref, err := Denoise(ctx, TrainerSamplingFree, mx, opts)
	if err != nil {
		t.Fatal(err)
	}
	_, fast, err := Denoise(ctx, TrainerSamplingFreeFast, mx, opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ref {
		if math.Abs(ref[i]-fast[i]) > 1e-4 {
			t.Fatalf("posterior %d: %v (reference) vs %v (fast)", i, ref[i], fast[i])
		}
	}
}
