package core

import (
	"math"
	"strings"
	"testing"

	"repro/internal/dfs"
	"repro/internal/mapreduce"
)

func seqLabels(n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = float64(i) / float64(n)
	}
	return out
}

// TestLabelsRoundTrip covers shard layouts where shards hold unequal record
// counts and where some shards are entirely empty: the round-robin layout
// must restore input order in all of them.
func TestLabelsRoundTrip(t *testing.T) {
	cases := []struct {
		name   string
		labels int
		shards int
	}{
		{"even", 12, 4},
		{"uneven", 10, 4}, // shards hold 3,3,2,2 records
		{"one shard", 7, 1},
		{"more shards than labels", 3, 8}, // five shards are empty
		{"single label", 1, 4},
		{"prime sizes", 17, 5},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			fs := dfs.NewMem()
			labels := seqLabels(tc.labels)
			if err := WriteLabels(fs, "out/labels", labels, tc.shards); err != nil {
				t.Fatalf("WriteLabels: %v", err)
			}
			shards, err := dfs.ListShards(fs, "out/labels")
			if err != nil {
				t.Fatalf("ListShards: %v", err)
			}
			if len(shards) != tc.shards {
				t.Fatalf("wrote %d shards, want %d", len(shards), tc.shards)
			}
			got, err := ReadLabels(fs, "out/labels")
			if err != nil {
				t.Fatalf("ReadLabels: %v", err)
			}
			if len(got) != len(labels) {
				t.Fatalf("read %d labels, want %d", len(got), len(labels))
			}
			for i := range labels {
				if got[i] != labels[i] {
					t.Fatalf("label %d = %v, want %v", i, got[i], labels[i])
				}
			}
		})
	}
}

func TestWriteLabelsRejectsOutOfRange(t *testing.T) {
	cases := []struct {
		name  string
		value float64
	}{
		{"negative", -0.1},
		{"above one", 1.5},
		{"NaN", math.NaN()},
		{"negative infinity", math.Inf(-1)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			fs := dfs.NewMem()
			labels := []float64{0.25, tc.value, 0.75}
			err := WriteLabels(fs, "out/labels", labels, 2)
			if err == nil {
				t.Fatalf("WriteLabels accepted %v", tc.value)
			}
			if !strings.Contains(err.Error(), "out of [0,1]") {
				t.Fatalf("error = %v, want out-of-range message", err)
			}
			// Nothing must be committed for an invalid label set.
			if _, lerr := dfs.ListShards(fs, "out/labels"); lerr == nil {
				t.Fatal("shards committed despite invalid label")
			}
		})
	}
}

// Boundary values 0 and 1 are legal probabilities.
func TestWriteLabelsBoundaries(t *testing.T) {
	fs := dfs.NewMem()
	labels := []float64{0, 1, 0.5}
	if err := WriteLabels(fs, "out/labels", labels, 2); err != nil {
		t.Fatalf("WriteLabels: %v", err)
	}
	got, err := ReadLabels(fs, "out/labels")
	if err != nil {
		t.Fatalf("ReadLabels: %v", err)
	}
	for i := range labels {
		if got[i] != labels[i] {
			t.Fatalf("label %d = %v, want %v", i, got[i], labels[i])
		}
	}
}

func TestReadLabelsRejectsTruncatedRecord(t *testing.T) {
	fs := dfs.NewMem()
	// A record of the wrong width: 7 bytes instead of float64's 8.
	bad := [][]byte{{1, 2, 3, 4, 5, 6, 7}}
	if err := mapreduce.WriteInput(fs, "out/labels", bad, 1); err != nil {
		t.Fatalf("WriteInput: %v", err)
	}
	_, err := ReadLabels(fs, "out/labels")
	if err == nil || !strings.Contains(err.Error(), "label record has 7 bytes") {
		t.Fatalf("ReadLabels = %v, want truncated-record error", err)
	}
}

func TestReadLabelsRejectsCorruptShard(t *testing.T) {
	fs := dfs.NewMem()
	if err := WriteLabels(fs, "out/labels", seqLabels(16), 2); err != nil {
		t.Fatalf("WriteLabels: %v", err)
	}
	shards, err := dfs.ListShards(fs, "out/labels")
	if err != nil {
		t.Fatalf("ListShards: %v", err)
	}
	// Flip a byte inside the recordio framing of the first shard.
	if err := fs.Corrupt(shards[0], 1); err != nil {
		t.Fatalf("Corrupt: %v", err)
	}
	if _, err := ReadLabels(fs, "out/labels"); err == nil {
		t.Fatal("ReadLabels succeeded on corrupt shard, want error")
	}
}
