package core

import (
	"fmt"
	"time"

	"repro/internal/corpus"
	"repro/internal/features"
	"repro/internal/model"
	"repro/internal/serving"
)

// ContentClassifier bundles a trained servable classifier for a content
// task: the hashing feature extractor, the logistic regression, and the
// tuned decision threshold.
type ContentClassifier struct {
	Hasher    *features.Hasher
	Model     *model.LogReg
	Threshold float64
	Bigrams   bool
}

// ContentTrainConfig configures discriminative training for content tasks.
type ContentTrainConfig struct {
	// FeatureDim is the hashed feature space (power of two). Default 2^18.
	FeatureDim uint32
	// Bigrams enables bigram features (the topic task's larger feature
	// space; §6.1 notes an order-of-magnitude feature difference).
	Bigrams bool
	// Iterations of FTRL (paper: 10K topic, 100K product). Default 10000.
	Iterations int
	// Seed drives sampling.
	Seed int64
	// FTRL overrides the optimizer config; zero value uses DefaultFTRL
	// (initial step size 0.2, as in the paper).
	FTRL model.FTRLConfig
}

// TrainContentClassifier trains the servable logistic regression on
// probabilistic labels (the paper's §5.3/§6.1 setup) and tunes the decision
// threshold for F1 on the labeled dev set.
func TrainContentClassifier(
	train []*corpus.Document, softLabels []float64,
	dev []*corpus.Document,
	cfg ContentTrainConfig,
) (*ContentClassifier, error) {
	if len(train) != len(softLabels) {
		return nil, fmt.Errorf("drybell: %d documents, %d labels", len(train), len(softLabels))
	}
	if cfg.FeatureDim == 0 {
		cfg.FeatureDim = 1 << 18
	}
	if cfg.Iterations <= 0 {
		cfg.Iterations = 10000
	}
	if cfg.FTRL.Alpha == 0 {
		cfg.FTRL = model.DefaultFTRL()
	}
	h, err := features.NewHasher(cfg.FeatureDim)
	if err != nil {
		return nil, err
	}
	lr, err := model.NewLogReg(cfg.FeatureDim, cfg.FTRL)
	if err != nil {
		return nil, err
	}
	xs := h.DocumentVectors(train, cfg.Bigrams)
	if err := lr.Train(xs, softLabels, model.TrainConfig{Iterations: cfg.Iterations, Seed: cfg.Seed}); err != nil {
		return nil, err
	}
	clf := &ContentClassifier{Hasher: h, Model: lr, Threshold: 0.5, Bigrams: cfg.Bigrams}
	if len(dev) > 0 {
		scores := clf.Scores(dev)
		th, _, err := model.BestF1Threshold(scores, corpus.GoldLabels(dev))
		if err == nil {
			clf.Threshold = th
		}
	}
	return clf, nil
}

// Scores returns P(positive) for each document.
func (c *ContentClassifier) Scores(docs []*corpus.Document) []float64 {
	return c.Model.PredictAll(c.Hasher.DocumentVectors(docs, c.Bigrams))
}

// Evaluate computes metrics on a labeled set at the tuned threshold.
func (c *ContentClassifier) Evaluate(docs []*corpus.Document) (model.Metrics, error) {
	return model.Evaluate(c.Scores(docs), corpus.GoldLabels(docs), c.Threshold)
}

// Export converts the classifier into a serving artifact carrying the full
// featurizer config (dimension, bigrams) and the servable signal families it
// reads, so an online server can rebuild the exact request-time featurizer
// from the artifact alone.
func (c *ContentClassifier) Export(name string) (*serving.Artifact, error) {
	art, err := serving.ExportLogReg(name, c.Model, c.Threshold)
	if err != nil {
		return nil, err
	}
	art.Bigrams = c.Bigrams
	// DocumentFeatures reads exactly these request-time fields.
	art.Signals = []string{"text", "url", "language"}
	return art, nil
}

// StageForServing exports the classifier, validates servability and latency
// against the budget on probe documents, stages it in the registry, and
// promotes it. Any Catalog works: the in-memory Registry for tests, or an
// FSRegistry whose state a serving daemon recovers after restart.
func (c *ContentClassifier) StageForServing(
	reg serving.Catalog, name string,
	probes []*corpus.Document, budget time.Duration,
) (*serving.Artifact, error) {
	art, err := c.Export(name)
	if err != nil {
		return nil, err
	}
	if err := serving.ValidateServable(art); err != nil {
		return nil, err
	}
	probeVecs := c.Hasher.DocumentVectors(probes, c.Bigrams)
	if err := serving.ValidateLatency(art, probeVecs, budget); err != nil {
		return nil, err
	}
	staged, err := reg.Stage(art)
	if err != nil {
		return nil, err
	}
	if err := reg.Promote(name, staged.Version); err != nil {
		return nil, err
	}
	return staged, nil
}

// TrainSupervisedBaseline trains the identical classifier directly on
// hand-labeled documents — the Tables 2-4 baseline ("training the
// discriminative classifier directly on the hand-labeled development set").
func TrainSupervisedBaseline(labeled []*corpus.Document, cfg ContentTrainConfig) (*ContentClassifier, error) {
	hard := make([]float64, len(labeled))
	for i, d := range labeled {
		if d.Gold {
			hard[i] = 1
		}
	}
	return TrainContentClassifier(labeled, hard, nil, cfg)
}
