package core

import (
	"fmt"

	"repro/internal/corpus"
	"repro/internal/model"
)

// EventClassifier is the servable DNN for the real-time events task: it
// reads only the real-time, event-level feature vector (§3.3, §6.4).
type EventClassifier struct {
	Model     *model.MLP
	Threshold float64
}

// EventTrainConfig configures the events DNN.
type EventTrainConfig struct {
	// Hidden layer sizes. Default [32, 16].
	Hidden []int
	// Epochs, BatchSize, LR as in model.MLPTrainConfig.
	Epochs    int
	BatchSize int
	LR        float64
	Seed      int64
}

// TrainEventClassifier trains the DNN over servable event features on
// probabilistic labels produced from the non-servable weak supervision —
// the cross-feature transfer of §4.
func TrainEventClassifier(train []*corpus.Event, softLabels []float64, cfg EventTrainConfig) (*EventClassifier, error) {
	if len(train) != len(softLabels) {
		return nil, fmt.Errorf("drybell: %d events, %d labels", len(train), len(softLabels))
	}
	if len(train) == 0 {
		return nil, fmt.Errorf("drybell: no events")
	}
	hidden := cfg.Hidden
	if len(hidden) == 0 {
		hidden = []int{32, 16}
	}
	mlp, err := model.NewMLP(len(train[0].Servable), hidden, cfg.Seed+100)
	if err != nil {
		return nil, err
	}
	xs := make([][]float64, len(train))
	for i, e := range train {
		xs[i] = e.Servable
	}
	if err := mlp.Train(xs, softLabels, model.MLPTrainConfig{
		Epochs: cfg.Epochs, BatchSize: cfg.BatchSize, LR: cfg.LR, Seed: cfg.Seed,
	}); err != nil {
		return nil, err
	}
	return &EventClassifier{Model: mlp, Threshold: 0.5}, nil
}

// Scores returns P(event of interest) for each event, from servable
// features only.
func (c *EventClassifier) Scores(events []*corpus.Event) ([]float64, error) {
	xs := make([][]float64, len(events))
	for i, e := range events {
		xs[i] = e.Servable
	}
	return c.Model.Predict(xs)
}

// Evaluate computes metrics on a labeled event set.
func (c *EventClassifier) Evaluate(events []*corpus.Event) (model.Metrics, error) {
	scores, err := c.Scores(events)
	if err != nil {
		return model.Metrics{}, err
	}
	return model.Evaluate(scores, corpus.EventGoldLabels(events), c.Threshold)
}
