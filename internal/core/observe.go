package core

import (
	"time"

	"repro/internal/lf"
	lfapi "repro/pkg/drybell/lf"
)

// StageName identifies one of the pipeline stages.
type StageName string

// The stages of the paper's Figure 4 flow, plus the development-loop
// analysis that follows labeling-function execution.
const (
	StageStage      StageName = "stage"
	StageExecuteLFs StageName = "execute-lfs"
	StageAnalyze    StageName = "analyze-lfs"
	StageDenoise    StageName = "denoise"
	StagePersist    StageName = "persist"
)

// StageEvent is the structured observability record emitted to a StageHook
// when a stage finishes, successfully or not. It carries the same data
// Result.Timings and Result.LFReport aggregate, but per stage and in real
// time.
type StageEvent struct {
	// Stage names the stage that finished.
	Stage StageName
	// Start is when the stage began; Duration is its wall time.
	Start    time.Time
	Duration time.Duration
	// Examples is the number of examples the stage processed, when known:
	// staged examples, matrix rows, posteriors computed, or labels written.
	Examples int
	// Report carries the per-labeling-function execution report. Only set
	// for StageExecuteLFs.
	Report *lf.Report
	// Analysis carries the development-loop report (per-LF coverage,
	// overlaps, conflicts, empirical accuracy). Only set for StageAnalyze.
	Analysis *lfapi.Analysis
	// LabelsPath is the DFS base the labels were written under. Only set
	// for StagePersist.
	LabelsPath string
	// Resumed is true when the stage was satisfied from filesystem state a
	// previous run committed (Config.Resume): a corpus already staged, or a
	// vote artifact loaded instead of executed.
	Resumed bool
	// Err is the stage's error, nil on success.
	Err error
}

// StageHook observes stage completions.
type StageHook func(StageEvent)
