package core

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/labelmodel"
)

// TrainerFunc trains a generative label model on an assembled label matrix.
// Implementations must be safe for concurrent use by independent pipelines.
type TrainerFunc func(*labelmodel.Matrix, labelmodel.Options) (*labelmodel.Model, error)

var (
	trainersMu sync.RWMutex
	trainers   = map[Trainer]TrainerFunc{
		TrainerSamplingFree:     labelmodel.TrainSamplingFree,
		TrainerSamplingFreeFast: labelmodel.TrainSamplingFreeFast,
		TrainerAnalytic:         labelmodel.TrainAnalytic,
		TrainerGibbs:            labelmodel.TrainGibbs,
	}
)

// RegisterTrainer makes a label-model trainer selectable by name in
// Config.Trainer. Registering an empty name, a nil function, or a name that
// is already taken is an error; the three built-in trainers are
// pre-registered.
func RegisterTrainer(name Trainer, fn TrainerFunc) error {
	if name == "" {
		return fmt.Errorf("drybell: RegisterTrainer with empty name")
	}
	if fn == nil {
		return fmt.Errorf("drybell: RegisterTrainer %q with nil function", name)
	}
	trainersMu.Lock()
	defer trainersMu.Unlock()
	if _, dup := trainers[name]; dup {
		return fmt.Errorf("drybell: trainer %q already registered", name)
	}
	trainers[name] = fn
	return nil
}

// LookupTrainer returns the registered trainer for name.
func LookupTrainer(name Trainer) (TrainerFunc, bool) {
	trainersMu.RLock()
	defer trainersMu.RUnlock()
	fn, ok := trainers[name]
	return fn, ok
}

// TrainerNames lists all registered trainer names, sorted.
func TrainerNames() []Trainer {
	trainersMu.RLock()
	defer trainersMu.RUnlock()
	out := make([]Trainer, 0, len(trainers))
	//drybellvet:ordered — collection only; sorted immediately below
	for name := range trainers {
		out = append(out, name)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
