package core

import (
	"bytes"
	"context"
	"path"
	"testing"

	"repro/internal/apps"
	"repro/internal/corpus"
	"repro/internal/dfs"
	"repro/internal/lf"
)

// TestCompactRestoresFlatState is the compaction contract: after appends,
// deletions, and Compact, the filesystem must be byte-identical to a fresh
// base run staged over the compacted corpus — input shards and vote artifact
// alike — with both ledgers empty and a new chain startable at generation 1.
func TestCompactRestoresFlatState(t *testing.T) {
	ctx := context.Background()
	full, err := corpus.GenerateTopic(corpus.TopicSpec{NumDocs: 680, PositiveRate: 0.05, Seed: 37})
	if err != nil {
		t.Fatal(err)
	}
	base, delta, next := full[:600], full[600:660], full[660:]

	fs := dfs.NewMem()
	cfg := topicConfig(fs)
	cfg.WorkDir = "drybell" // pin the default so path helpers below resolve
	cfg.Trainer = TrainerSamplingFreeFast
	lfs := apps.TopicLFs(nil, 0.02, 1)
	if _, err := Run(cfg, base, lfs); err != nil {
		t.Fatal(err)
	}

	// Compact refuses while a staged delta is pending: its votes would be lost.
	deleted := []int{5, 610}
	if _, err := StageDelta(ctx, cfg, Examples(delta), deleted); err != nil {
		t.Fatal(err)
	}
	if err := Compact(cfg); err == nil {
		t.Fatal("Compact folded a pending, unexecuted delta")
	}
	if _, err := IncrementalRun(ctx, cfg, lfs, nil); err != nil {
		t.Fatal(err)
	}
	if err := Compact(cfg); err != nil {
		t.Fatalf("Compact: %v", err)
	}

	gens, err := CorpusGenerations(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(gens) != 0 {
		t.Fatalf("corpus ledger still lists %d generations after Compact", len(gens))
	}
	votesBase := path.Join(cfg.VotesPrefix(), "votes")
	if g, err := lf.LatestGeneration(fs, votesBase); err != nil || g != 0 {
		t.Fatalf("vote store at generation %d (err %v) after Compact, want 0", g, err)
	}

	// Cold reference: a fresh base run over the compacted corpus (the 660
	// staged docs minus the two tombstoned rows).
	compacted := make([]*corpus.Document, 0, 658)
	for i, d := range full[:660] {
		if i != 5 && i != 610 {
			compacted = append(compacted, d)
		}
	}
	coldFS := dfs.NewMem()
	coldCfg := topicConfig(coldFS)
	coldCfg.WorkDir = "drybell"
	coldCfg.Trainer = TrainerSamplingFreeFast
	if _, err := Run(coldCfg, compacted, apps.TopicLFs(nil, 0.02, 1)); err != nil {
		t.Fatal(err)
	}
	compareShards(t, fs, coldFS, cfg.InputBase(), "input")
	compareShards(t, fs, coldFS, votesBase, "votes")
	a, errA := fs.ReadFile(votesBase + ".meta")
	b, errB := coldFS.ReadFile(votesBase + ".meta")
	if errA != nil || errB != nil || !bytes.Equal(a, b) {
		t.Errorf("votes meta differs from the cold run's (%v, %v)", errA, errB)
	}

	// The next delta starts a fresh chain at generation 1 on both ledgers.
	g, err := StageDelta(ctx, cfg, Examples(next), nil)
	if err != nil {
		t.Fatal(err)
	}
	if g.Gen != 1 || g.StartRow != 658 {
		t.Fatalf("post-compaction delta = %+v, want gen 1 at row 658", g)
	}
	inc, err := IncrementalRun(ctx, cfg, lfs, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(inc.Generations) != 1 || inc.Generations[0] != 1 {
		t.Fatalf("post-compaction run published %v, want [1]", inc.Generations)
	}
	if inc.Matrix.NumExamples() != 678 {
		t.Fatalf("post-compaction view has %d rows, want 678", inc.Matrix.NumExamples())
	}

	// Compact again with an executed chain: idempotent housekeeping.
	if err := Compact(cfg); err != nil {
		t.Fatalf("second Compact: %v", err)
	}
	if total, err := CorpusTotalRows(cfg); err != nil || total != 678 {
		t.Fatalf("compacted corpus has %d rows (err %v), want 678", total, err)
	}
}

// compareShards requires the committed shard sets at the same base on two
// filesystems to be byte-identical, shard by shard.
func compareShards(t *testing.T, a, b dfs.FS, base, what string) {
	t.Helper()
	as, err := dfs.ListShards(a, base)
	if err != nil {
		t.Fatalf("%s: list shards: %v", what, err)
	}
	bs, err := dfs.ListShards(b, base)
	if err != nil {
		t.Fatalf("%s: list cold shards: %v", what, err)
	}
	if len(as) != len(bs) {
		t.Fatalf("%s: %d shards vs %d cold shards", what, len(as), len(bs))
	}
	for i := range as {
		ad, err := a.ReadFile(as[i])
		if err != nil {
			t.Fatal(err)
		}
		bd, err := b.ReadFile(bs[i])
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(ad, bd) {
			t.Errorf("%s shard %s is not byte-identical to the cold run's", what, as[i])
		}
	}
}
