package mapreduce

import (
	"context"
	"fmt"
	"testing"
	"time"

	"repro/internal/dfs"
	"repro/internal/obs"
)

// attr returns the value of the named attribute, or nil.
func attr(s obs.SpanData, key string) any {
	for _, a := range s.Attrs {
		if a.Key == key {
			return a.Value
		}
	}
	return nil
}

// findJobSpan returns the "mapreduce:<name>" job span from the snapshot.
func findJobSpan(t *testing.T, spans []obs.SpanData, name string) obs.SpanData {
	t.Helper()
	for _, s := range spans {
		if s.Name == "mapreduce:"+name {
			return s
		}
	}
	t.Fatalf("no job span %q in trace (%d spans)", "mapreduce:"+name, len(spans))
	return obs.SpanData{}
}

// TestSpeculativeAttemptSpans: running a straggling job under a tracer, the
// rescued task shows up as exactly two sibling attempt spans under the job
// span — the speculative copy marked speculative=true — with exactly one
// "won" outcome between them.
func TestSpeculativeAttemptSpans(t *testing.T) {
	fs := dfs.NewMem()
	var recs [][]byte
	for i := 0; i < 20; i++ {
		recs = append(recs, []byte(fmt.Sprintf("r%03d", i)))
	}
	if err := WriteInput(fs, "in/r", recs, 4); err != nil {
		t.Fatal(err)
	}
	tr := obs.NewTracer()
	ctx := obs.WithTracer(context.Background(), tr)
	res, err := RunContext(ctx, Job{
		Name: "straggle", FS: fs, InputBase: "in/r", OutputBase: "out/r",
		Mapper:         slowFirstMapper{},
		Parallelism:    4,
		StragglerAfter: 30 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.SpeculativeAttempts == 0 {
		t.Fatal("no speculative attempt launched; test is vacuous")
	}

	spans := tr.Snapshot()
	job := findJobSpan(t, spans, "straggle")
	var attempts []obs.SpanData
	for _, s := range spans {
		if attr(s, "task") == "map-00000" {
			if s.Parent != job.ID {
				t.Errorf("attempt span %q parent = %d, want job span %d", s.Name, s.Parent, job.ID)
			}
			attempts = append(attempts, s)
		}
	}
	if len(attempts) != 2 {
		t.Fatalf("straggling task recorded %d attempt spans, want 2 siblings", len(attempts))
	}
	var won, speculative int
	for _, s := range attempts {
		switch attr(s, "outcome") {
		case "won":
			won++
		case "lost", "canceled":
		default:
			t.Errorf("attempt span %q has unexpected outcome %v", s.Name, attr(s, "outcome"))
		}
		if attr(s, "speculative") == true {
			speculative++
		}
	}
	if won != 1 {
		t.Errorf("%d attempt spans marked \"won\", want exactly 1", won)
	}
	if speculative != 1 {
		t.Errorf("%d attempt spans marked speculative, want exactly 1", speculative)
	}
}

// TestKilledAttemptSpanError: an attempt killed by an injected filesystem
// fault closes its span with error status and a "failed" outcome, while the
// retry wins — so the trace shows both the failure and the recovery.
func TestKilledAttemptSpanError(t *testing.T) {
	fs := dfs.NewFaultFS(dfs.NewMem(), 7)
	stageWords(t, fs, "in/w", faultyWords(), 4)
	// Exactly one attempt-output write fails: one killed attempt, then a
	// clean retry.
	fs.FailNext(dfs.OpWrite, "_attempts/", 1)

	tr := obs.NewTracer()
	ctx := obs.WithTracer(context.Background(), tr)
	res, err := RunContext(ctx, wordCountJob(fs, "in/w", "out/w", 4, 2))
	if err != nil {
		t.Fatal(err)
	}
	if fs.Injected() != 1 {
		t.Fatalf("injected faults = %d, want 1", fs.Injected())
	}

	spans := tr.Snapshot()
	var failed, retried bool
	for _, s := range spans {
		if attr(s, "outcome") == "failed" {
			if s.Err == "" {
				t.Errorf("failed attempt span %q closed without error status", s.Name)
			}
			failed = true
			// Its retry must appear as a sibling with a higher attempt
			// number that eventually won.
			for _, r := range spans {
				if r.Parent == s.Parent && attr(r, "task") == attr(s, "task") &&
					r.ID != s.ID && attr(r, "outcome") == "won" {
					retried = true
				}
			}
		}
	}
	if !failed {
		t.Fatal("no attempt span recorded a \"failed\" outcome despite the injected fault")
	}
	if !retried {
		t.Error("killed attempt has no winning sibling span")
	}
	if res.Attempts != res.MapTasks+res.ReduceTasks+1 {
		t.Errorf("attempts = %d, want %d (one retry)", res.Attempts, res.MapTasks+res.ReduceTasks+1)
	}
}
