package mapreduce

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/dfs"
	"repro/internal/obs"
)

// taskState is the coordinator's bookkeeping for one task across attempts.
type taskState struct {
	spec TaskSpec // attempt 0 template; each launch stamps its own Attempt

	mu         sync.Mutex
	launched   int                        // guarded by mu; attempts launched, including speculative
	failures   int                        // guarded by mu; failed attempts, charged against the retry budget
	done       bool                       // guarded by mu
	result     *TaskResult                // guarded by mu; winning attempt
	canonical  []string                   // guarded by mu; promoted output paths of the winner
	cancels    map[int]context.CancelFunc // guarded by mu
	speculated bool                       // guarded by mu
	// pendingSpec marks the next launch as the speculative sibling so its
	// attempt span carries the speculative attribute. Set by speculate,
	// consumed by the launch it triggered.
	pendingSpec bool        // guarded by mu
	timer       *time.Timer // guarded by mu
	resumed     *manifest   // guarded by mu; non-nil when satisfied from a prior run's checkpoint
}

// promoteFn moves a winning attempt's committed output to its canonical
// paths (atomic renames) and returns them. It runs under the task lock, so
// exactly one attempt per task is ever promoted: first commit wins.
type promoteFn func(t *taskState, res *TaskResult) ([]string, error)

// coordinator schedules a job's tasks through a queue onto a worker pool,
// enforcing per-task retry budgets, launching speculative attempts for
// stragglers, promoting exactly one attempt's output per task, and
// checkpointing completed tasks for resume.
type coordinator struct {
	job      *Job
	workers  []Worker
	scratch  string
	key      string
	counters *CounterSet

	attempts    atomic.Int64
	speculative atomic.Int64
	skipped     int

	manifests map[string]*manifest

	promotedMu sync.Mutex
	promoted   []string // guarded by promotedMu; canonical paths promoted this run, for failure cleanup
}

func (c *coordinator) mergeCounters(m map[string]int64) {
	//drybellvet:ordered — commutative counter merge, order-insensitive
	for k, v := range m {
		c.counters.Inc(k, v)
	}
}

// discard removes a losing or failed attempt's committed files. The paths
// are attempt-scoped, so this is pure hygiene — nothing ever reads them.
func (c *coordinator) discard(res *TaskResult) {
	if res == nil {
		return
	}
	for _, p := range res.Paths {
		_ = c.job.FS.Remove(p)
	}
}

func (c *coordinator) recordPromoted(paths []string) {
	c.promotedMu.Lock()
	c.promoted = append(c.promoted, paths...)
	c.promotedMu.Unlock()
}

// runPhase drives one phase's tasks to completion: every non-resumed task is
// queued, workers pull attempts, failures are retried within the budget, and
// stragglers get one speculative sibling. It returns the first permanent
// task failure, or a wrapped ctx error on cancellation.
func (c *coordinator) runPhase(ctx context.Context, tasks []*taskState, promote promoteFn) error {
	live := 0
	for _, t := range tasks {
		if t.resumed == nil { //drybellvet:locked — set only during single-threaded construction, before workers exist
			live++
		}
	}
	if live == 0 {
		return nil
	}
	phaseCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	// Each task enqueues at most 1 initial + MaxAttempts-1 retries + 1
	// speculative launch, so this capacity makes every send non-blocking.
	queue := make(chan *taskState, len(tasks)*(c.job.MaxAttempts+2))
	var pending atomic.Int64
	pending.Store(int64(live))
	allDone := make(chan struct{})
	finish := func() {
		if pending.Add(-1) == 0 {
			close(allDone)
		}
	}
	var errOnce sync.Once
	var phaseErr error
	fail := func(err error) {
		errOnce.Do(func() {
			phaseErr = err
			cancel()
		})
	}
	enqueue := func(t *taskState) {
		select {
		case queue <- t:
		case <-phaseCtx.Done():
		}
	}
	for _, t := range tasks {
		if t.resumed == nil { //drybellvet:locked — set only during single-threaded construction, before workers exist
			queue <- t
		}
	}

	var wg sync.WaitGroup
	for _, w := range c.workers {
		wg.Add(1)
		go func(w Worker) {
			defer wg.Done()
			for {
				select {
				case <-phaseCtx.Done():
					return
				case t := <-queue:
					c.runAttempt(phaseCtx, w, t, promote, enqueue, fail, finish)
				}
			}
		}(w)
	}
	select {
	case <-allDone:
	case <-phaseCtx.Done():
	}
	cancel()
	wg.Wait()
	//drybellvet:tightloop — post-join timer teardown, bounded by the task count
	for _, t := range tasks {
		t.mu.Lock()
		if t.timer != nil {
			t.timer.Stop()
		}
		t.mu.Unlock()
	}
	if phaseErr != nil {
		return phaseErr
	}
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("mapreduce: %w", err)
	}
	return nil
}

// runAttempt executes one attempt of one task on the given worker and folds
// the outcome back into the task's state.
func (c *coordinator) runAttempt(phaseCtx context.Context, w Worker, t *taskState,
	promote promoteFn, enqueue func(*taskState), fail func(error), finish func()) {
	t.mu.Lock()
	if t.done || t.failures >= c.job.MaxAttempts {
		t.mu.Unlock()
		return
	}
	t.launched++
	spec := t.spec
	spec.Attempt = t.launched
	speculative := t.pendingSpec
	t.pendingSpec = false
	actx, acancel := context.WithCancel(phaseCtx)
	t.cancels[spec.Attempt] = acancel
	if c.job.StragglerAfter > 0 && t.timer == nil {
		// Deadline-based straggler detection: if the task is still running
		// when the deadline passes, launch one speculative sibling. The
		// first attempt to commit wins; the other is canceled and its
		// attempt-scoped output discarded.
		tt := t
		t.timer = time.AfterFunc(c.job.StragglerAfter, func() { c.speculate(tt, enqueue) })
	}
	t.mu.Unlock()

	c.attempts.Add(1)
	// The span is a child of the job span phaseCtx carries; concurrent
	// attempts of one task become sibling spans distinguished by attempt
	// number and outcome.
	_, span := obs.StartSpan(phaseCtx, fmt.Sprintf("%s#%d", spec.TaskID(), spec.Attempt),
		obs.String("task", spec.TaskID()),
		obs.Int("attempt", spec.Attempt),
		obs.Bool("speculative", speculative))
	res, err := w.RunTask(actx, spec)
	acancel()
	if err == nil && res == nil {
		// Job.Workers is an extension seam: a backend breaking the "result
		// or error" contract is a task failure, not a panic.
		err = fmt.Errorf("worker returned neither a result nor an error")
	}

	t.mu.Lock()
	defer t.mu.Unlock()
	delete(t.cancels, spec.Attempt)
	if t.done {
		// A sibling already won. This attempt's output is unreferenced and
		// its counters are discarded, so speculation never double-counts.
		c.discard(res)
		span.SetAttr(obs.String("outcome", "lost"))
		span.End()
		return
	}
	if err != nil {
		// Failed attempts' counter increments are discarded along with their
		// output: exactly one attempt per task — the winner — contributes
		// counters, so a job's counters are deterministic under retries,
		// speculation, and injected faults.
		if phaseCtx.Err() != nil {
			// Phase shutdown (cancellation or another task's permanent
			// failure) — not this task's fault; don't charge the budget.
			span.SetAttr(obs.String("outcome", "canceled"))
			span.EndErr(err)
			return
		}
		span.SetAttr(obs.String("outcome", "failed"))
		span.EndErr(err)
		t.failures++
		if t.failures >= c.job.MaxAttempts {
			if len(t.cancels) > 0 {
				// A sibling attempt is still running; a speculative copy's
				// failure must not kill a task whose original may yet
				// commit. The sibling decides the task's fate: its success
				// completes the task, its failure lands here with no
				// sibling left and fails the job.
				return
			}
			fail(fmt.Errorf("mapreduce: task %s failed after %d attempts: %w",
				spec.TaskID(), c.job.MaxAttempts, err))
			return
		}
		enqueue(t)
		return
	}
	canonical, perr := promote(t, res)
	if perr != nil {
		// The attempt computed fine but its output could not be moved into
		// place (e.g. an injected rename fault). Re-execute: output is
		// deterministic, so a later attempt re-promotes the same bytes.
		c.discard(res)
		if phaseCtx.Err() != nil {
			span.SetAttr(obs.String("outcome", "canceled"))
			span.EndErr(perr)
			return
		}
		span.SetAttr(obs.String("outcome", "commit-failed"))
		span.EndErr(perr)
		t.failures++
		if t.failures >= c.job.MaxAttempts {
			if len(t.cancels) > 0 {
				return // a sibling is still running; let it decide (above)
			}
			fail(fmt.Errorf("mapreduce: task %s: commit failed after %d attempts: %w",
				spec.TaskID(), c.job.MaxAttempts, perr))
			return
		}
		enqueue(t)
		return
	}
	span.SetAttr(obs.String("outcome", "won"))
	span.End()
	t.done = true
	t.result = res
	t.canonical = canonical
	c.recordPromoted(canonical)
	if t.timer != nil {
		t.timer.Stop()
	}
	//drybellvet:ordered //drybellvet:tightloop — independent cancels; order and timing irrelevant
	for _, cfn := range t.cancels {
		cfn() // kill the straggler sibling, if any
	}
	c.mergeCounters(res.Counters)
	if c.job.Resume {
		// Best effort: a lost manifest costs one re-execution on resume,
		// never correctness.
		_ = writeManifest(c.job.FS, c.scratch, &manifest{
			Key:      c.key,
			Task:     spec.TaskID(),
			Index:    spec.Index,
			Reduce:   spec.Kind == ReduceTask,
			Records:  res.Records,
			Paths:    canonical,
			Counters: res.Counters,
		})
	}
	finish()
}

// speculate launches at most one speculative sibling for a straggling task.
// It requires an attempt to actually be in flight: a task whose attempt
// failed fast (or whose retry is still queued) is not a straggler, and
// speculating on it would just duplicate work.
func (c *coordinator) speculate(t *taskState, enqueue func(*taskState)) {
	t.mu.Lock()
	if t.done || t.speculated || len(t.cancels) == 0 || t.failures >= c.job.MaxAttempts {
		t.mu.Unlock()
		return
	}
	t.speculated = true
	t.pendingSpec = true
	t.mu.Unlock()
	c.speculative.Add(1)
	enqueue(t)
}

// adoptManifest marks a task as satisfied by a prior run's checkpoint,
// replaying its counters.
// It runs during single-threaded task construction, before any worker
// goroutine exists, so the task lock is not needed yet.
func (c *coordinator) adoptManifest(t *taskState, m *manifest) {
	t.resumed = m         //drybellvet:locked — single-threaded construction, before workers exist
	t.canonical = m.Paths //drybellvet:locked — single-threaded construction, before workers exist
	c.skipped++
	c.mergeCounters(m.Counters)
}

// cleanupScratch removes runtime files under the scratch area. With prefix
// "" everything goes (fresh jobs leave no trace); with "_attempts/" only the
// attempt leftovers go and checkpoints survive for the next resume.
func (c *coordinator) cleanupScratch(prefix string) {
	paths, err := c.job.FS.List(c.scratch + "/" + prefix) //drybellvet:notapath — List prefix; "" and trailing "/" are significant
	if err != nil {
		return
	}
	for _, p := range paths {
		if strings.HasPrefix(p, c.scratch+"/") { //drybellvet:notapath — prefix guard, not a key
			_ = c.job.FS.Remove(p)
		}
	}
}

// cleanupFailedRun restores the no-partial-output invariant for jobs running
// without Resume: every canonical path promoted this run, plus the whole
// scratch area, is removed so a failed job commits nothing a reader could
// consume.
func (c *coordinator) cleanupFailedRun() {
	c.promotedMu.Lock()
	promoted := c.promoted
	c.promoted = nil
	c.promotedMu.Unlock()
	for _, p := range promoted {
		_ = c.job.FS.Remove(p)
	}
	c.cleanupScratch("")
}

// promoteMapOnly returns the promotion function for map-only jobs: the
// attempt's single output file becomes final output shard i — or, for
// collecting jobs running with Resume, the task's checkpoint file.
func (c *coordinator) promoteMapOnly(numShards int) promoteFn {
	return func(t *taskState, res *TaskResult) ([]string, error) {
		if c.job.CollectOutput && !t.spec.Persist {
			return nil, nil // values live in memory only
		}
		// Job.Workers is an extension seam: a backend returning success
		// without a committed file is a task failure, not a panic.
		if len(res.Paths) != 1 {
			return nil, fmt.Errorf("worker committed %d output files, want 1", len(res.Paths))
		}
		var target string
		if c.job.CollectOutput {
			target = taskOutputPath(c.scratch, res.TaskID)
		} else {
			target = dfs.ShardPath(c.job.OutputBase, t.spec.Index, numShards)
		}
		if err := c.job.FS.Rename(res.Paths[0], target); err != nil {
			return nil, err
		}
		return []string{target}, nil
	}
}

// promoteShuffle returns the promotion function for map tasks of reducing
// jobs: each partition file moves to its canonical shuffle path. A partially
// promoted set from an earlier commit failure is simply overwritten — every
// partition ends up from the single winning attempt.
func (c *coordinator) promoteShuffle() promoteFn {
	return func(t *taskState, res *TaskResult) ([]string, error) {
		if len(res.Paths) != c.job.NumReducers {
			return nil, fmt.Errorf("worker committed %d shuffle partitions, want %d",
				len(res.Paths), c.job.NumReducers)
		}
		canonical := make([]string, len(res.Paths))
		for r, p := range res.Paths {
			target := shufflePath(c.scratch, t.spec.Index, r)
			if err := c.job.FS.Rename(p, target); err != nil {
				return nil, err
			}
			canonical[r] = target
		}
		return canonical, nil
	}
}

// promoteReduce returns the promotion function for reduce tasks: the
// attempt's output becomes final output shard r.
func (c *coordinator) promoteReduce() promoteFn {
	return func(t *taskState, res *TaskResult) ([]string, error) {
		if len(res.Paths) != 1 {
			return nil, fmt.Errorf("worker committed %d output files, want 1", len(res.Paths))
		}
		target := dfs.ShardPath(c.job.OutputBase, t.spec.Index, c.job.NumReducers)
		if err := c.job.FS.Rename(res.Paths[0], target); err != nil {
			return nil, err
		}
		return []string{target}, nil
	}
}
