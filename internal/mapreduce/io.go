package mapreduce

import (
	"bytes"
	"fmt"
	"io"

	"repro/internal/dfs"
	"repro/internal/recordio"
)

// WriteInput encodes records into n recordio shards under base, committing
// each shard atomically. It is the standard way to stage a corpus for a job.
func WriteInput(fs dfs.FS, base string, records [][]byte, n int) error {
	if n <= 0 {
		return fmt.Errorf("mapreduce: WriteInput with %d shards", n)
	}
	return dfs.WriteSharded(fs, base, records, n, func(recs [][]byte) ([]byte, error) {
		var buf bytes.Buffer
		if err := recordio.WriteAll(&buf, recs); err != nil {
			return nil, err
		}
		return buf.Bytes(), nil
	})
}

// ReadOutput reads and concatenates all records from the committed shard set
// at base, in shard order then record order.
func ReadOutput(fs dfs.FS, base string) ([][]byte, error) {
	shards, err := dfs.ListShards(fs, base)
	if err != nil {
		return nil, err
	}
	var out [][]byte
	for _, s := range shards {
		data, err := fs.ReadFile(s)
		if err != nil {
			return nil, err
		}
		recs, err := recordio.ReadAll(bytes.NewReader(data))
		if err != nil {
			return nil, fmt.Errorf("mapreduce: shard %s: %w", s, err)
		}
		out = append(out, recs...)
	}
	return out, nil
}

// CountRecords returns the total number of records in the shard set at base
// without retaining them.
func CountRecords(fs dfs.FS, base string) (int, error) {
	shards, err := dfs.ListShards(fs, base)
	if err != nil {
		return 0, err
	}
	total := 0
	for _, s := range shards {
		data, err := fs.ReadFile(s)
		if err != nil {
			return 0, err
		}
		r := recordio.NewReader(bytes.NewReader(data))
		for {
			_, err := r.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				return 0, fmt.Errorf("mapreduce: shard %s: %w", s, err)
			}
		}
		total += r.Count()
	}
	return total, nil
}
