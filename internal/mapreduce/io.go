package mapreduce

import (
	"bytes"
	"fmt"
	"io"

	"repro/internal/dfs"
	"repro/internal/recordio"
)

// WriteInput encodes records into n recordio shards under base, committing
// each shard atomically. It is the standard way to stage a corpus for a job.
func WriteInput(fs dfs.FS, base string, records [][]byte, n int) error {
	if n <= 0 {
		return fmt.Errorf("mapreduce: WriteInput with %d shards", n)
	}
	return dfs.WriteSharded(fs, base, records, n, func(recs [][]byte) ([]byte, error) {
		var buf bytes.Buffer
		if err := recordio.WriteAll(&buf, recs); err != nil {
			return nil, err
		}
		return buf.Bytes(), nil
	})
}

// InputWriter stages a record stream into n recordio shards without holding
// the records in one slice: record k goes to shard k%n, the same round-robin
// layout WriteInput produces, so map-only outputs restore input order the
// usual way. The encoded shard payloads are buffered in memory until Commit
// — the FS contract is whole-file writes — so peak memory is the encoded
// corpus, not the decoded examples plus a record slice. Shards are committed
// atomically by Commit; an abandoned writer leaves no visible files.
type InputWriter struct {
	fs      dfs.FS
	base    string
	n       int
	count   int
	bufs    []bytes.Buffer
	writers []*recordio.Writer
}

// NewInputWriter prepares a streaming staging writer for n shards under base.
func NewInputWriter(fs dfs.FS, base string, n int) (*InputWriter, error) {
	if n <= 0 {
		return nil, fmt.Errorf("mapreduce: NewInputWriter with %d shards", n)
	}
	w := &InputWriter{fs: fs, base: base, n: n, bufs: make([]bytes.Buffer, n), writers: make([]*recordio.Writer, n)}
	for i := range w.writers {
		w.writers[i] = recordio.NewWriter(&w.bufs[i])
	}
	return w, nil
}

// Append adds one record to the stream.
func (w *InputWriter) Append(rec []byte) error {
	if err := w.writers[w.count%w.n].Write(rec); err != nil {
		return err
	}
	w.count++
	return nil
}

// Count returns the number of records appended so far.
func (w *InputWriter) Count() int { return w.count }

// Commit flushes and atomically publishes all n shards.
func (w *InputWriter) Commit() error {
	for i := 0; i < w.n; i++ {
		if err := w.writers[i].Flush(); err != nil {
			return err
		}
		if err := dfs.PublishShard(w.fs, w.base, i, w.n, w.bufs[i].Bytes()); err != nil {
			return err
		}
	}
	return nil
}

// ReadOutput reads and concatenates all records from the committed shard set
// at base, in shard order then record order.
func ReadOutput(fs dfs.FS, base string) ([][]byte, error) {
	shards, err := dfs.ListShards(fs, base)
	if err != nil {
		return nil, err
	}
	var out [][]byte
	for _, s := range shards {
		data, err := fs.ReadFile(s)
		if err != nil {
			return nil, err
		}
		recs, err := recordio.ReadAll(bytes.NewReader(data))
		if err != nil {
			return nil, fmt.Errorf("mapreduce: shard %s: %w", s, err)
		}
		out = append(out, recs...)
	}
	return out, nil
}

// CountRecords returns the total number of records in the shard set at base
// without retaining them.
func CountRecords(fs dfs.FS, base string) (int, error) {
	shards, err := dfs.ListShards(fs, base)
	if err != nil {
		return 0, err
	}
	total := 0
	for _, s := range shards {
		data, err := fs.ReadFile(s)
		if err != nil {
			return 0, err
		}
		r := recordio.NewReader(bytes.NewReader(data))
		for {
			_, err := r.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				return 0, fmt.Errorf("mapreduce: shard %s: %w", s, err)
			}
		}
		total += r.Count()
	}
	return total, nil
}
