package mapreduce

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/dfs"
	"repro/internal/recordio"
)

// WriteInput encodes records into n recordio shards under base, committing
// each shard atomically. It is the standard way to stage a corpus for a job.
func WriteInput(fs dfs.FS, base string, records [][]byte, n int) error {
	if n <= 0 {
		return fmt.Errorf("mapreduce: WriteInput with %d shards", n)
	}
	return dfs.WriteSharded(fs, base, records, n, func(recs [][]byte) ([]byte, error) {
		var buf bytes.Buffer
		if err := recordio.WriteAll(&buf, recs); err != nil {
			return nil, err
		}
		return buf.Bytes(), nil
	})
}

// InputWriter stages a record stream into n recordio shards without holding
// the records in one slice: record k goes to shard k%n, the same round-robin
// layout WriteInput produces, so map-only outputs restore input order the
// usual way. The encoded shard payloads are buffered in memory until Commit
// — the FS contract is whole-file writes — so peak memory is the encoded
// corpus, not the decoded examples plus a record slice. Shards are committed
// atomically by Commit; an abandoned writer leaves no visible files.
type InputWriter struct {
	fs      dfs.FS
	base    string
	n       int
	count   int
	bufs    []bytes.Buffer
	writers []*recordio.Writer
}

// NewInputWriter prepares a streaming staging writer for n shards under base.
func NewInputWriter(fs dfs.FS, base string, n int) (*InputWriter, error) {
	if n <= 0 {
		return nil, fmt.Errorf("mapreduce: NewInputWriter with %d shards", n)
	}
	w := &InputWriter{fs: fs, base: base, n: n, bufs: make([]bytes.Buffer, n), writers: make([]*recordio.Writer, n)}
	for i := range w.writers {
		w.writers[i] = recordio.NewWriter(&w.bufs[i])
	}
	return w, nil
}

// Append adds one record to the stream.
func (w *InputWriter) Append(rec []byte) error {
	if err := w.writers[w.count%w.n].Write(rec); err != nil {
		return err
	}
	w.count++
	return nil
}

// Count returns the number of records appended so far.
func (w *InputWriter) Count() int { return w.count }

// stagedCount is the sidecar InputWriter.Commit records next to the staged
// shards: the record count plus each shard's byte size, so a reader can
// validate that the sidecar describes the shard set actually on the
// filesystem (a crash between re-staging and sidecar write leaves a stale
// sidecar, which the size check rejects) with Stat calls instead of a scan.
type stagedCount struct {
	Records int     `json:"records"`
	Sizes   []int64 `json:"sizes"`
}

// Commit flushes and atomically publishes all n shards, then records the
// staged record count in a sidecar (see ReadStagedCount) so later runs can
// learn the corpus size without re-scanning every shard.
func (w *InputWriter) Commit() error {
	sizes := make([]int64, w.n)
	for i := 0; i < w.n; i++ {
		if err := w.writers[i].Flush(); err != nil {
			return err
		}
		if err := dfs.PublishShard(w.fs, w.base, i, w.n, w.bufs[i].Bytes()); err != nil {
			return err
		}
		sizes[i] = int64(w.bufs[i].Len())
	}
	data, err := json.Marshal(stagedCount{Records: w.count, Sizes: sizes})
	if err != nil {
		return err
	}
	return w.fs.WriteFile(w.base+".count", data)
}

// ReadStagedCount returns the record count an InputWriter.Commit recorded
// for the staged corpus at base, after verifying the sidecar still matches
// the committed shard set (shard count and per-shard sizes, via Stat).
// Callers fall back to CountRecords — a full scan — when the sidecar is
// absent, stale, or was never written (older runs, WriteInput stagings).
func ReadStagedCount(fs dfs.FS, base string) (int, error) {
	data, err := fs.ReadFile(base + ".count")
	if err != nil {
		return 0, err
	}
	var sc stagedCount
	if err := json.Unmarshal(data, &sc); err != nil || sc.Records <= 0 || len(sc.Sizes) == 0 {
		return 0, fmt.Errorf("mapreduce: corrupt staged count at %s.count", base)
	}
	for i, want := range sc.Sizes {
		got, err := fs.Stat(dfs.ShardPath(base, i, len(sc.Sizes)))
		if err != nil || got != want {
			return 0, fmt.Errorf("mapreduce: staged count at %s.count does not match the committed shards", base)
		}
	}
	return sc.Records, nil
}

// ReadOutput reads and concatenates all records from the committed shard set
// at base, in shard order then record order.
func ReadOutput(fs dfs.FS, base string) ([][]byte, error) {
	shards, err := dfs.ListShards(fs, base)
	if err != nil {
		return nil, err
	}
	var out [][]byte
	for _, s := range shards {
		data, err := fs.ReadFile(s)
		if err != nil {
			return nil, err
		}
		recs, err := recordio.ReadAll(bytes.NewReader(data))
		if err != nil {
			return nil, fmt.Errorf("mapreduce: shard %s: %w", s, err)
		}
		out = append(out, recs...)
	}
	return out, nil
}

// CountRecords returns the total number of records in the shard set at base
// without retaining them.
func CountRecords(fs dfs.FS, base string) (int, error) {
	shards, err := dfs.ListShards(fs, base)
	if err != nil {
		return 0, err
	}
	total := 0
	for _, s := range shards {
		data, err := fs.ReadFile(s)
		if err != nil {
			return 0, err
		}
		r := recordio.NewReader(bytes.NewReader(data))
		for {
			_, err := r.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				return 0, fmt.Errorf("mapreduce: shard %s: %w", s, err)
			}
		}
		total += r.Count()
	}
	return total, nil
}
