package mapreduce

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"path"
	"strings"

	"repro/internal/dfs"
)

// manifest is the per-task checkpoint record the coordinator commits to the
// DFS after promoting a task's output. A later run with Job.Resume set skips
// every task whose manifest is present, keyed to the same job fingerprint,
// and whose promoted outputs still exist — the paper's "re-run only what's
// missing" recovery (§5.4).
type manifest struct {
	// Key fingerprints the job configuration (see resumeKey); a manifest
	// written by a logically different job is ignored.
	Key string `json:"key"`
	// Task is the task ID, e.g. "map-00003".
	Task string `json:"task"`
	// Index is the task index within its kind.
	Index int `json:"index"`
	// Reduce marks reduce-task manifests.
	Reduce bool `json:"reduce,omitempty"`
	// Records is the number of input records the task processed.
	Records int `json:"records"`
	// Paths are the promoted (canonical) output paths: final output shards,
	// shuffle partition files, or the collected-values checkpoint.
	Paths []string `json:"paths"`
	// Counters are the winning attempt's counter increments, replayed into
	// the job counters when the task is skipped on resume.
	Counters map[string]int64 `json:"counters,omitempty"`
}

// manifestDir is the DFS directory manifests live under, inside the job's
// scratch area.
func manifestDir(scratch string) string { return scratch + "/_manifest/" } //drybellvet:notapath — List-prefix form; the trailing slash is significant

// manifestPath is one task's manifest location.
func manifestPath(scratch, taskID string) string {
	return manifestDir(scratch) + taskID + ".json"
}

// taskOutputPath is where a CollectOutput job checkpoints a completed map
// task's emitted values when running with Resume.
func taskOutputPath(scratch, taskID string) string {
	return path.Join(scratch, "_tasks", taskID+".out")
}

// shufflePath is the canonical location of map task m's shuffle file for
// reduce partition r.
func shufflePath(scratch string, m, r int) string {
	return fmt.Sprintf("%s/_shuffle/map-%05d.p%05d", scratch, m, r)
}

// writeManifest commits one task's checkpoint. Best-effort by design: a
// missing manifest only costs a re-execution on resume, never correctness,
// so callers ignore the error under fault injection.
func writeManifest(fs dfs.FS, scratch string, m *manifest) error {
	data, err := json.Marshal(m)
	if err != nil {
		return err
	}
	return fs.WriteFile(manifestPath(scratch, m.Task), data)
}

// loadManifests reads every manifest under the scratch area that matches the
// job fingerprint and whose promoted outputs all still exist. Mismatched or
// stale entries are skipped (and re-executed), not treated as errors.
func loadManifests(fs dfs.FS, scratch, key string) (map[string]*manifest, error) {
	paths, err := fs.List(manifestDir(scratch))
	if err != nil {
		return nil, err
	}
	out := make(map[string]*manifest)
	for _, p := range paths {
		if !strings.HasSuffix(p, ".json") {
			continue
		}
		data, err := fs.ReadFile(p)
		if err != nil {
			continue // racing cleanup; treat as absent
		}
		var m manifest
		if err := json.Unmarshal(data, &m); err != nil || m.Key != key || m.Task == "" {
			continue
		}
		ok := true
		for _, op := range m.Paths {
			if _, err := fs.Stat(op); err != nil {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		out[m.Task] = &m
	}
	return out, nil
}

// resumeKey fingerprints the parts of a job that determine its output
// layout: a manifest is only trusted when name, input, output, sharding and
// the caller's own key (e.g. the labeling-function set) all match.
func (job *Job) resumeKey(numInputShards int) string {
	h := fnv.New64a()
	fmt.Fprintf(h, "%s|%s|%s|%d|%d|%v|%s",
		job.Name, job.InputBase, job.OutputBase, numInputShards,
		job.NumReducers, job.CollectOutput, job.ResumeKey)
	return fmt.Sprintf("%016x", h.Sum64())
}
