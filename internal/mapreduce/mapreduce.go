// Package mapreduce implements the distributed execution substrate that
// Snorkel DryBell's labeling-function pipelines run on (paper §5.1, §5.4).
//
// It simulates a MapReduce cluster inside one process: input shards are read
// from the simulated distributed filesystem, map tasks run concurrently on a
// bounded worker pool (each task standing in for a compute node), outputs are
// partitioned, shuffled, sorted and reduced, and result shards are committed
// atomically. The properties DryBell relies on are preserved:
//
//   - per-task Setup/Teardown hooks, used to launch a model server on each
//     "compute node" (the NLPLabelingFunction template),
//   - named counters aggregated across tasks,
//   - deterministic output independent of worker count and scheduling,
//   - task re-execution after injected worker failures, with no side effects
//     from failed attempts.
package mapreduce

import (
	"bytes"
	"context"
	"fmt"
	"hash/fnv"
	"runtime"
	"sort"
	"sync"

	"repro/internal/dfs"
	"repro/internal/recordio"
)

// Emitter receives key/value pairs from a map function or values from a
// reduce function.
type Emitter func(key string, value []byte)

// TaskContext carries per-task state into user functions. One TaskContext
// corresponds to one task attempt on one simulated compute node.
type TaskContext struct {
	// JobName is the owning job's name.
	JobName string
	// TaskID identifies the task within the job, e.g. "map-00002".
	TaskID string
	// Attempt is the 1-based attempt number for this task.
	Attempt int
	// Counters aggregates named counters across all tasks of the job.
	Counters *CounterSet

	// state holds whatever Setup stored, e.g. a model-server handle.
	state any
}

// SetState stores a per-task value (typically a model-server handle created
// in Setup) for later retrieval with State.
func (c *TaskContext) SetState(v any) { c.state = v }

// State returns the value stored with SetState, or nil.
func (c *TaskContext) State() any { return c.state }

// Mapper processes input records. Setup runs once per task attempt before
// any Map call, Teardown after the last one (also on failure paths after a
// successful Setup).
type Mapper interface {
	Setup(ctx *TaskContext) error
	Map(ctx *TaskContext, record []byte, emit Emitter) error
	Teardown(ctx *TaskContext) error
}

// MapFunc adapts a plain function to Mapper with no-op Setup/Teardown.
type MapFunc func(ctx *TaskContext, record []byte, emit Emitter) error

// Setup implements Mapper.
func (MapFunc) Setup(*TaskContext) error { return nil }

// Map implements Mapper.
func (f MapFunc) Map(ctx *TaskContext, record []byte, emit Emitter) error {
	return f(ctx, record, emit)
}

// Teardown implements Mapper.
func (MapFunc) Teardown(*TaskContext) error { return nil }

// BatchMapper is an optional Mapper extension. When a job's Mapper
// implements it, the engine delivers each task's records as one MapBatch
// call instead of one Map call per record, letting vectorized user code
// amortize per-record overhead (e.g. a labeling function's VoteBatch).
// Emissions must be equivalent to mapping each record in order; Setup and
// Teardown still bracket the call.
type BatchMapper interface {
	MapBatch(ctx *TaskContext, records [][]byte, emit Emitter) error
}

// Reducer folds all values for a key into zero or more output records.
// Values arrive in a deterministic order (by map task, then emission order).
type Reducer interface {
	Reduce(ctx *TaskContext, key string, values [][]byte, emit Emitter) error
}

// ReduceFunc adapts a plain function to Reducer.
type ReduceFunc func(ctx *TaskContext, key string, values [][]byte, emit Emitter) error

// Reduce implements Reducer.
func (f ReduceFunc) Reduce(ctx *TaskContext, key string, values [][]byte, emit Emitter) error {
	return f(ctx, key, values, emit)
}

// Job specifies one MapReduce execution.
type Job struct {
	// Name labels the job in errors and counters.
	Name string
	// FS is the filesystem holding input and receiving output.
	FS dfs.FS
	// InputBase is the base path of the sharded recordio input.
	InputBase string
	// OutputBase is the base path for sharded recordio output.
	OutputBase string
	// Mapper is required.
	Mapper Mapper
	// Reducer is required unless NumReducers is zero (map-only mode).
	Reducer Reducer
	// NumReducers is the number of output partitions. Zero selects map-only
	// mode: map emissions are written in input order, one output shard per
	// input shard, and keys are ignored for partitioning.
	NumReducers int
	// CollectOutput, valid only in map-only mode, skips committing output
	// shards and instead returns every task's emitted values in
	// Result.MapOutputs. Callers that post-process map output before
	// persisting it (e.g. the labeling-function executor assembling a
	// columnar vote artifact across jobs) use this to avoid a write-and-
	// reread round trip through the filesystem.
	CollectOutput bool
	// Parallelism bounds concurrently running tasks; it simulates the number
	// of compute nodes. Defaults to runtime.GOMAXPROCS(0), the number of
	// usable CPUs.
	Parallelism int
	// MaxAttempts bounds attempts per task before the job fails. Defaults to 3.
	MaxAttempts int
	// FailureHook, if set, is consulted at the start of every task attempt;
	// returning an error fails that attempt. Used to inject worker crashes.
	FailureHook func(taskID string, attempt int) error
}

// Result reports a completed job.
type Result struct {
	// Counters holds the aggregated named counters.
	Counters map[string]int64
	// MapTasks and ReduceTasks count scheduled tasks (not attempts).
	MapTasks    int
	ReduceTasks int
	// Attempts counts all task attempts, including failures.
	Attempts int
	// OutputShards lists the committed output shard paths in order. Empty
	// when the job ran with CollectOutput.
	OutputShards []string
	// MapOutputs holds, per input shard, the values emitted by its map task
	// in emission order. Populated only when the job ran with CollectOutput.
	MapOutputs [][][]byte
}

// CounterSet is a concurrency-safe set of named int64 counters.
type CounterSet struct {
	mu sync.Mutex
	m  map[string]int64
}

// NewCounterSet returns an empty counter set.
func NewCounterSet() *CounterSet { return &CounterSet{m: make(map[string]int64)} }

// Inc adds delta to the named counter.
func (c *CounterSet) Inc(name string, delta int64) {
	c.mu.Lock()
	c.m[name] += delta
	c.mu.Unlock()
}

// Get returns the named counter's value.
func (c *CounterSet) Get(name string) int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.m[name]
}

// Snapshot returns a copy of all counters.
func (c *CounterSet) Snapshot() map[string]int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]int64, len(c.m))
	for k, v := range c.m {
		out[k] = v
	}
	return out
}

// kv is one shuffled pair tagged for deterministic ordering.
type kv struct {
	key     string
	value   []byte
	mapTask int
	seq     int
}

// Run executes the job to completion and returns its result.
func Run(job Job) (*Result, error) {
	return RunContext(context.Background(), job)
}

// RunContext executes the job under a context. Cancellation is honored
// between tasks and between records within a task; a canceled run returns an
// error satisfying errors.Is(err, ctx.Err()) and commits no further output.
func RunContext(ctx context.Context, job Job) (*Result, error) {
	if job.Mapper == nil {
		return nil, fmt.Errorf("mapreduce: job %q has no mapper", job.Name)
	}
	if job.NumReducers > 0 && job.Reducer == nil {
		return nil, fmt.Errorf("mapreduce: job %q has %d reducers but no Reducer", job.Name, job.NumReducers)
	}
	if job.FS == nil {
		return nil, fmt.Errorf("mapreduce: job %q has no filesystem", job.Name)
	}
	if job.CollectOutput && job.NumReducers > 0 {
		return nil, fmt.Errorf("mapreduce: job %q collects output but has %d reducers", job.Name, job.NumReducers)
	}
	if job.Parallelism <= 0 {
		job.Parallelism = runtime.GOMAXPROCS(0)
	}
	if job.MaxAttempts <= 0 {
		job.MaxAttempts = 3
	}

	inputShards, err := dfs.ListShards(job.FS, job.InputBase)
	if err != nil {
		return nil, fmt.Errorf("mapreduce: job %q: %w", job.Name, err)
	}

	counters := NewCounterSet()
	res := &Result{MapTasks: len(inputShards)}
	var attempts int64
	var attemptsMu sync.Mutex
	countAttempt := func() {
		attemptsMu.Lock()
		attempts++
		attemptsMu.Unlock()
	}

	// ---- Map phase ----
	mapOut := make([][]kv, len(inputShards)) // per map task, emitted pairs
	if err := runTasks(ctx, len(inputShards), job.Parallelism, func(i int) error {
		taskID := fmt.Sprintf("map-%05d", i)
		var lastErr error
		for attempt := 1; attempt <= job.MaxAttempts; attempt++ {
			if err := ctx.Err(); err != nil {
				return fmt.Errorf("mapreduce: task %s: %w", taskID, err)
			}
			countAttempt()
			pairs, err := runMapAttempt(ctx, job, inputShards[i], taskID, attempt, i, counters)
			if err == nil {
				mapOut[i] = pairs
				return nil
			}
			lastErr = err
			// A canceled attempt is not a worker failure; don't retry it.
			if ctx.Err() != nil {
				return fmt.Errorf("mapreduce: task %s: %w", taskID, lastErr)
			}
		}
		return fmt.Errorf("mapreduce: task %s failed after %d attempts: %w", taskID, job.MaxAttempts, lastErr)
	}); err != nil {
		return nil, err
	}

	if job.NumReducers == 0 {
		if job.CollectOutput {
			res.MapOutputs = make([][][]byte, len(mapOut))
			for i, pairs := range mapOut {
				vals := make([][]byte, len(pairs))
				for k, p := range pairs {
					vals[k] = p.value
				}
				res.MapOutputs[i] = vals
			}
			res.Counters = counters.Snapshot()
			res.Attempts = int(attempts)
			return res, nil
		}
		// Map-only: write map outputs shard-for-shard in input order.
		for i, pairs := range mapOut {
			var buf bytes.Buffer
			w := recordio.NewWriter(&buf)
			for _, p := range pairs {
				if err := w.Write(p.value); err != nil {
					return nil, fmt.Errorf("mapreduce: encode output shard %d: %w", i, err)
				}
			}
			if err := w.Flush(); err != nil {
				return nil, err
			}
			if err := commitShard(job.FS, job.OutputBase, i, len(mapOut), buf.Bytes()); err != nil {
				return nil, err
			}
			res.OutputShards = append(res.OutputShards, dfs.ShardPath(job.OutputBase, i, len(mapOut)))
		}
		res.Counters = counters.Snapshot()
		res.Attempts = int(attempts)
		return res, nil
	}

	// ---- Shuffle: partition by key hash, then sort deterministically ----
	parts := make([][]kv, job.NumReducers)
	for _, pairs := range mapOut {
		for _, p := range pairs {
			r := partition(p.key, job.NumReducers)
			parts[r] = append(parts[r], p)
		}
	}
	for r := range parts {
		sort.Slice(parts[r], func(a, b int) bool {
			pa, pb := parts[r][a], parts[r][b]
			if pa.key != pb.key {
				return pa.key < pb.key
			}
			if pa.mapTask != pb.mapTask {
				return pa.mapTask < pb.mapTask
			}
			return pa.seq < pb.seq
		})
	}

	// ---- Reduce phase ----
	res.ReduceTasks = job.NumReducers
	reduceOut := make([][][]byte, job.NumReducers)
	if err := runTasks(ctx, job.NumReducers, job.Parallelism, func(r int) error {
		taskID := fmt.Sprintf("reduce-%05d", r)
		var lastErr error
		for attempt := 1; attempt <= job.MaxAttempts; attempt++ {
			if err := ctx.Err(); err != nil {
				return fmt.Errorf("mapreduce: task %s: %w", taskID, err)
			}
			countAttempt()
			out, err := runReduceAttempt(ctx, job, parts[r], taskID, attempt, counters)
			if err == nil {
				reduceOut[r] = out
				return nil
			}
			lastErr = err
			if ctx.Err() != nil {
				return fmt.Errorf("mapreduce: task %s: %w", taskID, lastErr)
			}
		}
		return fmt.Errorf("mapreduce: task %s failed after %d attempts: %w", taskID, job.MaxAttempts, lastErr)
	}); err != nil {
		return nil, err
	}

	for r, records := range reduceOut {
		var buf bytes.Buffer
		w := recordio.NewWriter(&buf)
		for _, rec := range records {
			if err := w.Write(rec); err != nil {
				return nil, fmt.Errorf("mapreduce: encode output shard %d: %w", r, err)
			}
		}
		if err := w.Flush(); err != nil {
			return nil, err
		}
		if err := commitShard(job.FS, job.OutputBase, r, job.NumReducers, buf.Bytes()); err != nil {
			return nil, err
		}
		res.OutputShards = append(res.OutputShards, dfs.ShardPath(job.OutputBase, r, job.NumReducers))
	}
	res.Counters = counters.Snapshot()
	res.Attempts = int(attempts)
	return res, nil
}

// runMapAttempt executes one attempt of one map task. All effects are
// buffered in the returned slice, so a failed attempt leaves no trace.
func runMapAttempt(ctx context.Context, job Job, shardPath, taskID string, attempt, mapIdx int, counters *CounterSet) ([]kv, error) {
	tctx := &TaskContext{JobName: job.Name, TaskID: taskID, Attempt: attempt, Counters: counters}
	if job.FailureHook != nil {
		if err := job.FailureHook(taskID, attempt); err != nil {
			return nil, err
		}
	}
	data, err := job.FS.ReadFile(shardPath)
	if err != nil {
		return nil, err
	}
	records, err := recordio.ReadAll(bytes.NewReader(data))
	if err != nil {
		return nil, err
	}
	if err := job.Mapper.Setup(tctx); err != nil {
		return nil, fmt.Errorf("setup: %w", err)
	}
	var pairs []kv
	seq := 0
	emit := func(key string, value []byte) {
		cp := make([]byte, len(value))
		copy(cp, value)
		pairs = append(pairs, kv{key: key, value: cp, mapTask: mapIdx, seq: seq})
		seq++
	}
	var mapErr error
	if bm, ok := job.Mapper.(BatchMapper); ok {
		if mapErr = ctx.Err(); mapErr == nil {
			mapErr = bm.MapBatch(tctx, records, emit)
		}
	} else {
		for _, rec := range records {
			if mapErr = ctx.Err(); mapErr != nil {
				break
			}
			if mapErr = job.Mapper.Map(tctx, rec, emit); mapErr != nil {
				break
			}
		}
	}
	tdErr := job.Mapper.Teardown(tctx)
	if mapErr != nil {
		return nil, mapErr
	}
	if tdErr != nil {
		return nil, fmt.Errorf("teardown: %w", tdErr)
	}
	return pairs, nil
}

// runReduceAttempt executes one attempt of one reduce task over its
// pre-sorted partition.
func runReduceAttempt(ctx context.Context, job Job, part []kv, taskID string, attempt int, counters *CounterSet) ([][]byte, error) {
	tctx := &TaskContext{JobName: job.Name, TaskID: taskID, Attempt: attempt, Counters: counters}
	if job.FailureHook != nil {
		if err := job.FailureHook(taskID, attempt); err != nil {
			return nil, err
		}
	}
	var out [][]byte
	emit := func(_ string, value []byte) {
		cp := make([]byte, len(value))
		copy(cp, value)
		out = append(out, cp)
	}
	for i := 0; i < len(part); {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		j := i
		for j < len(part) && part[j].key == part[i].key {
			j++
		}
		values := make([][]byte, 0, j-i)
		for k := i; k < j; k++ {
			values = append(values, part[k].value)
		}
		if err := job.Reducer.Reduce(tctx, part[i].key, values, emit); err != nil {
			return nil, err
		}
		i = j
	}
	return out, nil
}

func commitShard(fs dfs.FS, base string, i, n int, data []byte) error {
	return dfs.PublishShard(fs, base, i, n, data)
}

func partition(key string, n int) int {
	h := fnv.New32a()
	h.Write([]byte(key))
	return int(h.Sum32() % uint32(n))
}

// runTasks executes fn(0..n-1) on at most p goroutines, returning the first
// error (all workers are drained before returning). Dispatch stops once ctx
// is done; already-running tasks observe cancellation themselves.
func runTasks(ctx context.Context, n, p int, fn func(i int) error) error {
	if p > n {
		p = n
	}
	if p <= 0 {
		p = 1
	}
	tasks := make(chan int)
	errs := make(chan error, n)
	var wg sync.WaitGroup
	for w := 0; w < p; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range tasks {
				errs <- fn(i)
			}
		}()
	}
	canceled := false
dispatch:
	for i := 0; i < n; i++ {
		select {
		case tasks <- i:
		case <-ctx.Done():
			canceled = true
			break dispatch
		}
	}
	close(tasks)
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			return err
		}
	}
	if canceled {
		return fmt.Errorf("mapreduce: %w", ctx.Err())
	}
	return nil
}
