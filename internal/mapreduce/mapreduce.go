// Package mapreduce implements the distributed execution substrate that
// Snorkel DryBell's labeling-function pipelines run on (paper §5.1, §5.4).
//
// The runtime is a coordinator/worker architecture simulating a MapReduce
// cluster inside one process: a coordinator schedules task attempts through
// a queue onto a pool of Workers (the in-process pool is the first backend;
// the Worker interface is the seam for out-of-process executors). Each
// worker executes one map or reduce task against the simulated distributed
// filesystem and commits its output under an attempt-scoped scratch path;
// the coordinator promotes exactly one winning attempt per task to the
// canonical output via atomic rename. The properties DryBell relies on are
// preserved and extended:
//
//   - per-task Setup/Teardown hooks, used to launch a model server on each
//     "compute node" (the NLPLabelingFunction template),
//   - named counters aggregated across tasks,
//   - deterministic output independent of worker count, scheduling, retries
//     and speculation,
//   - per-task retry budgets: worker failures re-execute the task, and a
//     killed attempt never publishes partial output (attempt isolation),
//   - deadline-based straggler detection with speculative re-execution —
//     first commit wins,
//   - stage-level checkpoint/resume: with Job.Resume, completed task
//     manifests are recorded under the scratch area's _manifest/ directory,
//     and a re-run skips every task whose committed output survives.
package mapreduce

import (
	"bytes"
	"context"
	"fmt"
	"hash/fnv"
	"runtime"
	"sync"
	"time"

	"repro/internal/dfs"
	"repro/internal/obs"
	"repro/internal/recordio"
)

// Emitter receives key/value pairs from a map function or values from a
// reduce function.
type Emitter func(key string, value []byte)

// TaskContext carries per-task state into user functions. One TaskContext
// corresponds to one task attempt on one simulated compute node.
type TaskContext struct {
	// Ctx is the attempt's context: it is canceled when the run is canceled
	// or when a sibling speculative attempt commits first. Long-running user
	// code should honor it; the engine itself checks it between records.
	Ctx context.Context
	// JobName is the owning job's name.
	JobName string
	// TaskID identifies the task within the job, e.g. "map-00002".
	TaskID string
	// Attempt is the 1-based attempt number for this task.
	Attempt int
	// Counters aggregates named counters across all tasks of the job.
	Counters *CounterSet

	// state holds whatever Setup stored, e.g. a model-server handle.
	state any
}

// SetState stores a per-task value (typically a model-server handle created
// in Setup) for later retrieval with State.
func (c *TaskContext) SetState(v any) { c.state = v }

// State returns the value stored with SetState, or nil.
func (c *TaskContext) State() any { return c.state }

// Mapper processes input records. Setup runs once per task attempt before
// any Map call, Teardown after the last one (also on failure paths after a
// successful Setup).
type Mapper interface {
	Setup(ctx *TaskContext) error
	Map(ctx *TaskContext, record []byte, emit Emitter) error
	Teardown(ctx *TaskContext) error
}

// MapFunc adapts a plain function to Mapper with no-op Setup/Teardown.
type MapFunc func(ctx *TaskContext, record []byte, emit Emitter) error

// Setup implements Mapper.
func (MapFunc) Setup(*TaskContext) error { return nil }

// Map implements Mapper.
func (f MapFunc) Map(ctx *TaskContext, record []byte, emit Emitter) error {
	return f(ctx, record, emit)
}

// Teardown implements Mapper.
func (MapFunc) Teardown(*TaskContext) error { return nil }

// BatchMapper is an optional Mapper extension. When a job's Mapper
// implements it, the engine delivers each task's records as one MapBatch
// call instead of one Map call per record, letting vectorized user code
// amortize per-record overhead (e.g. a labeling function's VoteBatch).
// Emissions must be equivalent to mapping each record in order; Setup and
// Teardown still bracket the call.
type BatchMapper interface {
	MapBatch(ctx *TaskContext, records [][]byte, emit Emitter) error
}

// Reducer folds all values for a key into zero or more output records.
// Values arrive in a deterministic order (by map task, then emission order).
type Reducer interface {
	Reduce(ctx *TaskContext, key string, values [][]byte, emit Emitter) error
}

// ReduceFunc adapts a plain function to Reducer.
type ReduceFunc func(ctx *TaskContext, key string, values [][]byte, emit Emitter) error

// Reduce implements Reducer.
func (f ReduceFunc) Reduce(ctx *TaskContext, key string, values [][]byte, emit Emitter) error {
	return f(ctx, key, values, emit)
}

// Job specifies one MapReduce execution.
type Job struct {
	// Name labels the job in errors and counters.
	Name string
	// FS is the filesystem holding input and receiving output.
	FS dfs.FS
	// InputBase is the base path of the sharded recordio input.
	InputBase string
	// OutputBase is the base path for sharded recordio output.
	OutputBase string
	// Mapper is required.
	Mapper Mapper
	// Reducer is required unless NumReducers is zero (map-only mode).
	Reducer Reducer
	// NumReducers is the number of output partitions. Zero selects map-only
	// mode: map emissions are written in input order, one output shard per
	// input shard, and keys are ignored for partitioning.
	NumReducers int
	// CollectOutput, valid only in map-only mode, skips committing output
	// shards and instead returns every task's emitted values in
	// Result.MapOutputs. Callers that post-process map output before
	// persisting it (e.g. the labeling-function executor assembling a
	// columnar vote artifact across jobs) use this to avoid a write-and-
	// reread round trip through the filesystem. With Resume, each task's
	// values are additionally checkpointed to the scratch area so a resumed
	// run recovers them without re-execution.
	CollectOutput bool
	// Parallelism bounds concurrently running tasks; it simulates the number
	// of compute nodes. Defaults to runtime.GOMAXPROCS(0), the number of
	// usable CPUs. Ignored when Workers is set.
	Parallelism int
	// Workers optionally supplies the execution backend: one goroutine is
	// run per Worker, each executing one task attempt at a time. When nil,
	// an in-process pool of Parallelism workers is built from the job's
	// Mapper/Reducer.
	Workers []Worker
	// MaxAttempts bounds attempts per task before the job fails. Defaults to 3.
	MaxAttempts int
	// StragglerAfter enables deadline-based speculative re-execution: a task
	// attempt still running after this duration gets one speculative sibling
	// on a free worker, and the first attempt to commit wins (the loser is
	// canceled and its attempt-scoped output discarded). Zero disables
	// speculation.
	StragglerAfter time.Duration
	// Resume enables stage-level checkpoint/resume: each completed task's
	// manifest (output paths + counters) is recorded under the scratch
	// area's _manifest/ directory, and a re-run of the same job skips every
	// task whose manifest and committed output are still present,
	// re-executing only what's missing. Result.SkippedTasks reports how many
	// tasks were satisfied from checkpoints.
	Resume bool
	// ScratchBase overrides the DFS runtime area holding attempt-scoped
	// output, shuffle files, and manifests. Defaults to OutputBase+".runtime"
	// (or InputBase+".runtime" for collecting jobs with no output base).
	ScratchBase string
	// ResumeKey folds caller identity into the job fingerprint guarding
	// manifests, so checkpoints written for a logically different job (e.g.
	// another labeling-function set over the same paths) are never reused.
	ResumeKey string
	// FailureHook, if set, is consulted at the start of every task attempt;
	// returning an error fails that attempt. Used to inject worker crashes.
	FailureHook func(taskID string, attempt int) error
	// Code names the worker-side implementation of the job's user functions
	// for out-of-process backends: it is stamped into every TaskSpec, and a
	// remote worker resolves it in its job-code registry
	// (internal/mapreduce/remote) to the Mapper/Reducer the task runs. The
	// in-process pool carries its functions directly and ignores it.
	Code string
	// Generation tags incremental (delta) jobs with the artifact generation
	// their output will publish — zero for full batch runs. It is stamped
	// into every TaskSpec, so out-of-process workers can attribute a task to
	// the corpus delta that spawned it in logs and metrics.
	Generation int
}

// Result reports a completed job.
type Result struct {
	// Counters holds the aggregated named counters.
	Counters map[string]int64
	// MapTasks and ReduceTasks count scheduled tasks (not attempts).
	MapTasks    int
	ReduceTasks int
	// Attempts counts task attempts launched by this run, including failed
	// and speculative ones. Tasks skipped via Resume launch none.
	Attempts int
	// SkippedTasks counts tasks satisfied from a prior run's checkpoints
	// (always zero without Job.Resume).
	SkippedTasks int
	// SpeculativeAttempts counts straggler-triggered speculative launches.
	SpeculativeAttempts int
	// OutputShards lists the committed output shard paths in order. Empty
	// when the job ran with CollectOutput.
	OutputShards []string
	// MapOutputs holds, per input shard, the values emitted by its map task
	// in emission order. Populated only when the job ran with CollectOutput.
	MapOutputs [][][]byte
}

// CounterSet is a concurrency-safe set of named int64 counters.
type CounterSet struct {
	mu sync.Mutex
	m  map[string]int64 // guarded by mu
}

// NewCounterSet returns an empty counter set.
func NewCounterSet() *CounterSet { return &CounterSet{m: make(map[string]int64)} }

// Inc adds delta to the named counter.
func (c *CounterSet) Inc(name string, delta int64) {
	c.mu.Lock()
	c.m[name] += delta
	c.mu.Unlock()
}

// Get returns the named counter's value.
func (c *CounterSet) Get(name string) int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.m[name]
}

// Snapshot returns a copy of all counters.
func (c *CounterSet) Snapshot() map[string]int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]int64, len(c.m))
	//drybellvet:ordered — map-to-map copy, order-insensitive
	for k, v := range c.m {
		out[k] = v
	}
	return out
}

// kv is one shuffled pair tagged for deterministic ordering.
type kv struct {
	key     string
	value   []byte
	mapTask int
	seq     int
}

// Run executes the job to completion and returns its result.
func Run(job Job) (*Result, error) {
	return RunContext(context.Background(), job)
}

// RunContext executes the job under a context. Cancellation is honored
// between tasks and between records within a task; a canceled run returns an
// error satisfying errors.Is(err, ctx.Err()) and commits no further output.
//
// When ctx carries an obs.Tracer, the job records a span tree: one span per
// job, one child span per task attempt (retries and speculative siblings are
// sibling spans carrying win/lose outcome attributes).
func RunContext(ctx context.Context, job Job) (*Result, error) {
	ctx, span := obs.StartSpan(ctx, "mapreduce:"+job.Name)
	res, err := runJob(ctx, job)
	if res != nil {
		span.SetAttr(
			obs.Int("attempts", res.Attempts),
			obs.Int("speculative", res.SpeculativeAttempts),
			obs.Int("skipped_tasks", res.SkippedTasks),
		)
	}
	span.EndErr(err)
	return res, err
}

// runJob is RunContext's body, separated so the job span brackets exactly
// one execution.
func runJob(ctx context.Context, job Job) (*Result, error) {
	if job.Mapper == nil {
		return nil, fmt.Errorf("mapreduce: job %q has no mapper", job.Name)
	}
	if job.NumReducers > 0 && job.Reducer == nil {
		return nil, fmt.Errorf("mapreduce: job %q has %d reducers but no Reducer", job.Name, job.NumReducers)
	}
	if job.FS == nil {
		return nil, fmt.Errorf("mapreduce: job %q has no filesystem", job.Name)
	}
	if job.CollectOutput && job.NumReducers > 0 {
		return nil, fmt.Errorf("mapreduce: job %q collects output but has %d reducers", job.Name, job.NumReducers)
	}
	if job.Parallelism <= 0 {
		job.Parallelism = runtime.GOMAXPROCS(0)
	}
	if job.MaxAttempts <= 0 {
		job.MaxAttempts = 3
	}

	inputShards, err := dfs.ListShards(job.FS, job.InputBase)
	if err != nil {
		return nil, fmt.Errorf("mapreduce: job %q: %w", job.Name, err)
	}

	c := &coordinator{
		job:      &job,
		scratch:  job.scratchBase(),
		key:      job.resumeKey(len(inputShards)),
		counters: NewCounterSet(),
	}
	if job.Workers != nil {
		c.workers = job.Workers
	} else {
		c.workers = newLocalPool(&job, job.Parallelism)
	}
	if len(c.workers) == 0 {
		return nil, fmt.Errorf("mapreduce: job %q has an empty worker pool", job.Name)
	}
	if job.Resume {
		// A checkpoint that cannot be listed is the same as no checkpoint.
		c.manifests, _ = loadManifests(job.FS, c.scratch, c.key)
	}

	// ---- Build task states ----
	mapTasks := make([]*taskState, len(inputShards))
	//drybellvet:tightloop — in-memory task-spec construction, bounded by shard count
	for i, shard := range inputShards {
		t := &taskState{
			spec: TaskSpec{
				Job:         job.Name,
				Kind:        MapTask,
				Index:       i,
				Inputs:      []string{shard},
				InputBase:   job.InputBase,
				Code:        job.Code,
				NumReducers: job.NumReducers,
				Scratch:     c.scratch,
				Collect:     job.CollectOutput,
				Persist:     job.CollectOutput && job.Resume,
				Generation:  job.Generation,
			},
			cancels: map[int]context.CancelFunc{},
		}
		if m, ok := c.manifests[t.spec.TaskID()]; ok {
			c.adoptManifest(t, m)
		}
		mapTasks[i] = t
	}
	var reduceTasks []*taskState
	if job.NumReducers > 0 {
		reduceTasks = make([]*taskState, job.NumReducers)
		//drybellvet:tightloop — in-memory task-spec construction, bounded by reducer count
		for r := range reduceTasks {
			inputs := make([]string, len(inputShards))
			for m := range inputShards {
				inputs[m] = shufflePath(c.scratch, m, r)
			}
			t := &taskState{
				spec: TaskSpec{
					Job:        job.Name,
					Kind:       ReduceTask,
					Index:      r,
					Inputs:     inputs,
					InputBase:  job.InputBase,
					Code:       job.Code,
					Scratch:    c.scratch,
					Generation: job.Generation,
				},
				cancels: map[int]context.CancelFunc{},
			}
			if m, ok := c.manifests[t.spec.TaskID()]; ok {
				c.adoptManifest(t, m)
			}
			reduceTasks[r] = t
		}
	}

	// ---- Map phase ----
	// When every reduce task is already checkpointed the map phase is pure
	// shuffle production nobody will read; skip it — but only if every map
	// task is checkpointed too, so a map task whose manifest was lost still
	// runs and contributes its counters (Result.Counters stays identical to
	// a clean run's).
	runMaps := job.NumReducers == 0 || !allResumed(reduceTasks) || !allResumed(mapTasks)
	if runMaps {
		promote := c.promoteMapOnly(len(inputShards))
		if job.NumReducers > 0 {
			promote = c.promoteShuffle()
		}
		if err := c.runPhase(ctx, mapTasks, promote); err != nil {
			if !job.Resume {
				c.cleanupFailedRun()
			}
			return nil, err
		}
	}

	// ---- Reduce phase ----
	if job.NumReducers > 0 {
		if err := c.runPhase(ctx, reduceTasks, c.promoteReduce()); err != nil {
			if !job.Resume {
				c.cleanupFailedRun()
			}
			return nil, err
		}
	}

	res := &Result{
		MapTasks:            len(inputShards),
		ReduceTasks:         job.NumReducers,
		Attempts:            int(c.attempts.Load()),
		SkippedTasks:        c.skipped,
		SpeculativeAttempts: int(c.speculative.Load()),
	}
	if job.NumReducers > 0 {
		//drybellvet:tightloop — shard-name formatting, bounded by reducer count
		for r := range reduceTasks {
			res.OutputShards = append(res.OutputShards,
				dfs.ShardPath(job.OutputBase, r, job.NumReducers))
		}
	} else if job.CollectOutput {
		res.MapOutputs = make([][][]byte, len(mapTasks))
		for i, t := range mapTasks {
			if err := ctx.Err(); err != nil {
				return nil, fmt.Errorf("mapreduce: job %q: %w", job.Name, err)
			}
			// All phases have joined: no worker goroutine is left to race
			// these reads.
			if t.resumed != nil { //drybellvet:locked — post-join read; workers have exited
				vals, err := readTaskOutput(job.FS, t.resumed.Paths) //drybellvet:locked — post-join read; workers have exited
				if err != nil {
					return nil, fmt.Errorf("mapreduce: job %q: resume task %s: %w", job.Name, t.spec.TaskID(), err)
				}
				res.MapOutputs[i] = vals
				continue
			}
			res.MapOutputs[i] = t.result.Values //drybellvet:locked — post-join read; workers have exited
		}
	} else {
		//drybellvet:tightloop — shard-name formatting, bounded by shard count
		for i := range mapTasks {
			res.OutputShards = append(res.OutputShards,
				dfs.ShardPath(job.OutputBase, i, len(inputShards)))
		}
	}
	res.Counters = c.counters.Snapshot()

	// A fresh job leaves no runtime files behind; a resumable one keeps its
	// checkpoints (manifests, shuffle, collected task outputs) so the next
	// run over the same state skips straight to completion.
	if job.Resume {
		c.cleanupScratch("_attempts/")
	} else {
		c.cleanupScratch("")
	}
	return res, nil
}

// scratchBase resolves the job's runtime area.
func (job *Job) scratchBase() string {
	if job.ScratchBase != "" {
		return job.ScratchBase
	}
	if job.OutputBase != "" {
		return job.OutputBase + ".runtime"
	}
	return job.InputBase + ".runtime"
}

// allResumed reports whether every task in the phase was satisfied from a
// checkpoint.
func allResumed(tasks []*taskState) bool {
	for _, t := range tasks {
		if t.resumed == nil { //drybellvet:locked — called before workers launch or after they join
			return false
		}
	}
	return len(tasks) > 0
}

// readTaskOutput reloads a checkpointed CollectOutput task's values.
func readTaskOutput(fs dfs.FS, paths []string) ([][]byte, error) {
	if len(paths) == 0 {
		return nil, nil
	}
	data, err := fs.ReadFile(paths[0])
	if err != nil {
		return nil, err
	}
	return recordio.ReadAll(bytes.NewReader(data))
}

func partition(key string, n int) int {
	h := fnv.New32a()
	h.Write([]byte(key))
	return int(h.Sum32() % uint32(n))
}
