package remote

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"time"

	"repro/internal/mapreduce"
)

// WorkerHooks are fault-injection seams for the remote fault suite. They
// let a test make a worker process misbehave in the three ways the lease
// protocol must absorb — die, partition, stall — without reaching into the
// worker's internals. All are optional.
type WorkerHooks struct {
	// Kill, when it returns true for a leased spec, makes the worker
	// vanish mid-task: no heartbeat, no completion, no deregistration —
	// RunWorker just returns, like a process killed dead. The lease
	// expires and the coordinator re-executes the task elsewhere.
	Kill func(spec mapreduce.TaskSpec) bool
	// DropHeartbeats, when it returns true for the leased spec, suppresses
	// lease renewal while execution continues — a network partition. The
	// coordinator cannot tell this from a death (by design); the lease
	// expires, the task re-runs elsewhere, and this worker's eventual
	// completion is rejected with 410 Gone.
	DropHeartbeats func(spec mapreduce.TaskSpec) bool
	// Stall delays the leased spec's execution — a straggler. With
	// speculation enabled the coordinator races a second attempt and the
	// first committed result wins.
	Stall func(spec mapreduce.TaskSpec)
}

// WorkerOptions configures one worker process's RunWorker loop.
type WorkerOptions struct {
	// Coordinator is the base URL of the coordinator's Handler, e.g.
	// "http://127.0.0.1:9090". Required.
	Coordinator string
	// Name is an advisory label for diagnostics; identity is the WorkerID
	// the coordinator mints at registration.
	Name string
	// Jobs resolves TaskSpec.Code keys to this worker's job
	// implementations. Required.
	Jobs *Registry
	// Client is the HTTP client for all coordinator traffic. Nil uses
	// http.DefaultClient.
	Client *http.Client
	// PollWait is how long each lease request long-polls. Defaults to 2s.
	PollWait time.Duration
	// HeartbeatEvery is the lease renewal interval. Defaults to a third of
	// the TTL the coordinator grants, and is clamped below TTL.
	HeartbeatEvery time.Duration
	// Hooks inject faults for tests.
	Hooks WorkerHooks
}

// errKilled distinguishes a hook-simulated death inside the lease loop.
var errKilled = fmt.Errorf("remote: worker killed by fault hook")

// builtCode is one resolved-and-built job implementation, cached per code
// key for the life of the worker process.
type builtCode struct {
	mapper  mapreduce.Mapper
	reducer mapreduce.Reducer
}

// workerClient is the running state of one RunWorker call.
type workerClient struct {
	opts  WorkerOptions
	fs    *FSClient
	hc    *http.Client
	id    string
	built map[string]builtCode // code key → cached build; single-goroutine
}

// RunWorker registers with the coordinator and serves tasks until ctx
// ends. It is the body of `drybelld -mode worker`.
//
// The loop: long-poll for a lease, resolve the spec's Code key in Jobs
// (building and caching the job's user functions, which may read the
// corpus through the coordinator's DFS gateway), execute the task with
// mapreduce.ExecuteTask against that same gateway while a background
// goroutine renews the lease, then report the result.
//
// Cancellation is a graceful drain: a worker holding a lease finishes the
// task — heartbeats keep the lease alive, so nothing is re-executed — then
// deregisters and returns nil. A worker that loses its lease mid-task (410
// on heartbeat: it was partitioned or too slow, and the coordinator moved
// on) abandons the task immediately; its attempt-scoped output is inert.
func RunWorker(ctx context.Context, opts WorkerOptions) error {
	if opts.Coordinator == "" {
		return fmt.Errorf("remote: WorkerOptions.Coordinator is required")
	}
	if opts.Jobs == nil {
		return fmt.Errorf("remote: WorkerOptions.Jobs is required")
	}
	if opts.PollWait <= 0 {
		opts.PollWait = 2 * time.Second
	}
	hc := opts.Client
	if hc == nil {
		hc = http.DefaultClient
	}
	w := &workerClient{
		opts:  opts,
		fs:    NewFSClient(opts.Coordinator, hc),
		hc:    hc,
		built: make(map[string]builtCode),
	}
	if err := w.register(ctx); err != nil {
		return err
	}
	for {
		if ctx.Err() != nil {
			w.deregister()
			return nil
		}
		spec, leaseID, ttl, status, err := w.lease(ctx)
		switch {
		case ctx.Err() != nil:
			w.deregister()
			return nil
		case err != nil:
			// Coordinator unreachable; back off briefly and retry. A
			// long outage just means this worker contributes nothing
			// until the coordinator returns.
			w.pause(ctx, 100*time.Millisecond)
			continue
		case status == http.StatusGone:
			// Stale identity (coordinator restarted, or we were
			// deregistered). Re-register for a fresh one.
			if err := w.register(ctx); err != nil {
				return err
			}
			continue
		case status == http.StatusServiceUnavailable:
			// Pool closed: the coordinator is done with remote work.
			return nil
		case status == http.StatusNoContent:
			continue // empty poll; the server already waited
		case status != http.StatusOK:
			w.pause(ctx, 100*time.Millisecond)
			continue
		}
		if err := w.serve(ctx, spec, leaseID, ttl); err != nil {
			if err == errKilled {
				return nil // simulated death: no drain, no deregister
			}
			return err
		}
	}
}

// serve executes one leased task and reports its outcome.
func (w *workerClient) serve(ctx context.Context, spec mapreduce.TaskSpec, leaseID string, ttl time.Duration) error {
	if w.opts.Hooks.Kill != nil && w.opts.Hooks.Kill(spec) {
		return errKilled
	}

	// The task must survive a drain signal: canceling ctx stops the
	// leasing loop, not work already leased. Losing the lease (410 on
	// heartbeat) is what aborts execution.
	taskCtx, abandon := context.WithCancel(context.WithoutCancel(ctx)) //drybellvet:detached — drain finishes the leased task; only lease loss aborts it
	defer abandon()

	hbEvery := w.opts.HeartbeatEvery
	if hbEvery <= 0 {
		hbEvery = ttl / 3
	}
	if hbEvery >= ttl {
		hbEvery = ttl / 2
	}
	hbDone := make(chan struct{})
	go w.heartbeatLoop(taskCtx, spec, leaseID, hbEvery, abandon, hbDone)

	if w.opts.Hooks.Stall != nil {
		w.opts.Hooks.Stall(spec)
	}

	result, taskErr := w.execute(taskCtx, spec)
	lost := taskCtx.Err() != nil // heartbeat got 410 and abandoned the task
	abandon()
	<-hbDone
	if lost {
		// Lease lost mid-task; nothing to report — the coordinator
		// already charged the attempt, and a completion would only
		// bounce off 410 anyway.
		return nil
	}
	w.complete(leaseID, result, taskErr)
	return nil
}

// heartbeatLoop renews the lease until the task context ends. A 410 means
// the lease is gone — this worker is a zombie for the task — so it aborts
// execution via abandon. Transport errors are tolerated: the next beat may
// get through, and if none do the lease expires, which is the same
// outcome a real partition produces.
func (w *workerClient) heartbeatLoop(ctx context.Context, spec mapreduce.TaskSpec, leaseID string, every time.Duration, abandon context.CancelFunc, done chan<- struct{}) {
	defer close(done)
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			if w.opts.Hooks.DropHeartbeats != nil && w.opts.Hooks.DropHeartbeats(spec) {
				continue
			}
			status, err := w.post("/heartbeat", heartbeatRequest{WorkerID: w.id, LeaseID: leaseID}, nil)
			if err == nil && status == http.StatusGone {
				abandon()
				return
			}
		}
	}
}

// execute resolves the spec's code key and runs the task against the
// coordinator's DFS gateway.
func (w *workerClient) execute(ctx context.Context, spec mapreduce.TaskSpec) (*mapreduce.TaskResult, error) {
	code, ok := w.built[spec.Code]
	if !ok {
		jc, found := w.opts.Jobs.Lookup(spec.Code)
		if !found {
			return nil, fmt.Errorf("remote: no job code %q on this worker (have %v) — deployment skew?", spec.Code, w.opts.Jobs.Keys())
		}
		mapper, reducer, err := jc.Build(ctx, w.fs, spec.InputBase)
		if err != nil {
			return nil, fmt.Errorf("remote: building job code %q: %w", spec.Code, err)
		}
		code = builtCode{mapper: mapper, reducer: reducer}
		w.built[spec.Code] = code
	}
	return mapreduce.ExecuteTask(ctx, w.fs, spec, spec.Job, code.mapper, code.reducer)
}

// register obtains a fresh worker identity, retrying while the coordinator
// is unreachable (it may still be binding its listener).
func (w *workerClient) register(ctx context.Context) error {
	for {
		var resp registerResponse
		status, err := w.post("/register", registerRequest{Name: w.opts.Name}, &resp)
		if err == nil && status == http.StatusOK && resp.WorkerID != "" {
			w.id = resp.WorkerID
			return nil
		}
		if err == nil && status == http.StatusServiceUnavailable {
			return fmt.Errorf("remote: coordinator pool closed")
		}
		if ctx.Err() != nil {
			return fmt.Errorf("remote: registering with %s: %w", w.opts.Coordinator, ctx.Err())
		}
		w.pause(ctx, 100*time.Millisecond)
	}
}

// deregister is the drain's last act; best-effort, the lease sweeper
// covers us if it never arrives.
func (w *workerClient) deregister() {
	_, _ = w.post("/deregister", deregisterRequest{WorkerID: w.id}, nil)
}

// lease long-polls the coordinator for one dispatch.
func (w *workerClient) lease(ctx context.Context) (spec mapreduce.TaskSpec, leaseID string, ttl time.Duration, status int, err error) {
	payload, err := json.Marshal(leaseRequest{WorkerID: w.id, Wait: w.opts.PollWait})
	if err != nil {
		return spec, "", 0, 0, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, w.opts.Coordinator+apiPrefix+"/lease", bytes.NewReader(payload))
	if err != nil {
		return spec, "", 0, 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := w.hc.Do(req)
	if err != nil {
		return spec, "", 0, 0, err
	}
	defer drain(resp)
	if resp.StatusCode != http.StatusOK {
		return spec, "", 0, resp.StatusCode, nil
	}
	var lr leaseResponse
	if err := json.NewDecoder(resp.Body).Decode(&lr); err != nil {
		return spec, "", 0, 0, err
	}
	return lr.Spec, lr.LeaseID, lr.TTL, http.StatusOK, nil
}

// complete reports the attempt's outcome. A 410 means the lease expired
// first and the result is discarded — the attempt was already charged as
// failed and possibly re-run; this worker's output stays attempt-scoped
// and unpromoted. Transport errors are also absorbed: an unreportable
// completion and a death look identical to the coordinator, and the lease
// sweeper turns both into a retried attempt.
func (w *workerClient) complete(leaseID string, result *mapreduce.TaskResult, taskErr error) {
	req := completeRequest{WorkerID: w.id, LeaseID: leaseID, Result: result}
	if taskErr != nil {
		req.Result = nil
		req.Error = taskErr.Error()
	}
	_, _ = w.post("/complete", req, nil)
}

// post sends one JSON request to a control endpoint and decodes the
// response into out when it is non-nil and the status is 200.
func (w *workerClient) post(endpoint string, body, out any) (int, error) {
	payload, err := json.Marshal(body)
	if err != nil {
		return 0, err
	}
	req, err := http.NewRequest(http.MethodPost, w.opts.Coordinator+apiPrefix+endpoint, bytes.NewReader(payload))
	if err != nil {
		return 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := w.hc.Do(req)
	if err != nil {
		return 0, err
	}
	defer drain(resp)
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			return resp.StatusCode, err
		}
	}
	return resp.StatusCode, nil
}

// pause sleeps briefly between retries, waking early on cancellation.
func (w *workerClient) pause(ctx context.Context, d time.Duration) {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
	case <-t.C:
	}
}
