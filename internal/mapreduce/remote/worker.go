package remote

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"time"

	"repro/internal/breaker"
	"repro/internal/mapreduce"
	"repro/internal/obs"
)

// WorkerHooks are fault-injection seams for the remote fault suite. They
// let a test make a worker process misbehave in the three ways the lease
// protocol must absorb — die, partition, stall — without reaching into the
// worker's internals. All are optional.
type WorkerHooks struct {
	// Kill, when it returns true for a leased spec, makes the worker
	// vanish mid-task: no heartbeat, no completion, no deregistration —
	// RunWorker just returns, like a process killed dead. The lease
	// expires and the coordinator re-executes the task elsewhere.
	Kill func(spec mapreduce.TaskSpec) bool
	// DropHeartbeats, when it returns true for the leased spec, suppresses
	// lease renewal while execution continues — a network partition. The
	// coordinator cannot tell this from a death (by design); the lease
	// expires, the task re-runs elsewhere, and this worker's eventual
	// completion is rejected with 410 Gone.
	DropHeartbeats func(spec mapreduce.TaskSpec) bool
	// Stall delays the leased spec's execution — a straggler. With
	// speculation enabled the coordinator races a second attempt and the
	// first committed result wins.
	Stall func(spec mapreduce.TaskSpec)
}

// WorkerOptions configures one worker process's RunWorker loop.
type WorkerOptions struct {
	// Coordinator is the base URL of the coordinator's Handler, e.g.
	// "http://127.0.0.1:9090". Required.
	Coordinator string
	// Name is an advisory label for diagnostics; identity is the WorkerID
	// the coordinator mints at registration. It also seeds the worker's
	// retry jitter, so a fleet of named workers restarting together
	// decorrelates instead of stampeding.
	Name string
	// Jobs resolves TaskSpec.Code keys to this worker's job
	// implementations. Required.
	Jobs *Registry
	// Client is the HTTP client for all coordinator traffic. Nil uses
	// http.DefaultClient.
	Client *http.Client
	// PollWait is how long each lease request long-polls. Defaults to 2s.
	PollWait time.Duration
	// HeartbeatEvery is the lease renewal interval. Defaults to a third of
	// the TTL the coordinator grants, and is clamped below TTL.
	HeartbeatEvery time.Duration
	// Retry is the shared backoff-with-jitter schedule for every retrying
	// coordinator interaction: registration, lease polls after transport
	// errors, completion reports, and the DFS gateway client's idempotent
	// operations. Zero fields inherit DefaultPolicy.
	Retry Policy
	// DrainTimeout bounds the graceful drain: once ctx is canceled, a task
	// still executing after this long is abandoned (its lease expires and
	// the coordinator re-runs it elsewhere) so SIGTERM cannot hang forever
	// on a stuck task. 0 means drain without bound.
	DrainTimeout time.Duration
	// HedgeReads, when > 0, hedges slow DFS gateway reads: a read still
	// unanswered after this long gets a racing duplicate, first answer
	// wins. Reads are idempotent, so hedging trades a little duplicate
	// load for tail latency.
	HedgeReads time.Duration
	// BreakerThreshold is how many consecutive transport failures open the
	// coordinator-client circuit breaker (heartbeat failures included —
	// they are the earliest partition signal). While open, the lease loop
	// waits out the cooldown instead of hammering a dead coordinator.
	// Defaults to 5.
	BreakerThreshold int
	// BreakerCooldown is how long the breaker stays open before probing.
	// Defaults to 2s.
	BreakerCooldown time.Duration
	// Metrics, when non-nil, records the client's resilience decisions
	// (retries, hedges, hedge wins, breaker state) as registry series.
	Metrics *obs.Registry
	// Hooks inject faults for tests.
	Hooks WorkerHooks
}

// errKilled distinguishes a hook-simulated death inside the lease loop.
var errKilled = fmt.Errorf("remote: worker killed by fault hook")

// builtCode is one resolved-and-built job implementation, cached per code
// key for the life of the worker process.
type builtCode struct {
	mapper  mapreduce.Mapper
	reducer mapreduce.Reducer
}

// workerClient is the running state of one RunWorker call.
type workerClient struct {
	opts  WorkerOptions
	fs    *FSClient
	hc    *http.Client
	id    string
	built map[string]builtCode // code key → cached build; single-goroutine

	// seeds decorrelates the jitter streams of this worker's retry loops.
	seeds *retrySeeds
	// br is the coordinator-client circuit breaker: every control-plane
	// call feeds it (transport error = failure, any HTTP answer =
	// success), and the register/lease loops consult it before dialing.
	br *breaker.Breaker
}

// RunWorker registers with the coordinator and serves tasks until ctx
// ends. It is the body of `drybelld -mode worker`.
//
// The loop: long-poll for a lease, resolve the spec's Code key in Jobs
// (building and caching the job's user functions, which may read the
// corpus through the coordinator's DFS gateway), execute the task with
// mapreduce.ExecuteTask against that same gateway while a background
// goroutine renews the lease, then report the result.
//
// Cancellation is a graceful drain: a worker holding a lease finishes the
// task — heartbeats keep the lease alive, so nothing is re-executed — then
// deregisters and returns nil. A worker that loses its lease mid-task (410
// on heartbeat: it was partitioned or too slow, and the coordinator moved
// on) abandons the task immediately; its attempt-scoped output is inert.
func RunWorker(ctx context.Context, opts WorkerOptions) error {
	if opts.Coordinator == "" {
		return fmt.Errorf("remote: WorkerOptions.Coordinator is required")
	}
	if opts.Jobs == nil {
		return fmt.Errorf("remote: WorkerOptions.Jobs is required")
	}
	if opts.PollWait <= 0 {
		opts.PollWait = 2 * time.Second
	}
	if opts.BreakerThreshold <= 0 {
		opts.BreakerThreshold = 5
	}
	if opts.BreakerCooldown <= 0 {
		opts.BreakerCooldown = 2 * time.Second
	}
	hc := opts.Client
	if hc == nil {
		hc = http.DefaultClient
	}
	seeds := newRetrySeeds(SeedString(opts.Coordinator + "/" + opts.Name))
	var brOpts []breaker.Option
	if opts.Metrics != nil {
		state := opts.Metrics.Gauge("drybell_remote_client_breaker_state",
			"Coordinator-client breaker position (0 closed, 1 open, 2 half-open).")
		brOpts = append(brOpts, breaker.WithOnChange(func(s breaker.State) { state.Set(float64(s)) }))
	}
	w := &workerClient{
		opts: opts,
		fs: NewFSClientOpts(opts.Coordinator, hc, FSClientOptions{
			Retry:      opts.Retry,
			HedgeAfter: opts.HedgeReads,
			Seed:       seeds.next(),
			Metrics:    opts.Metrics,
		}),
		hc:    hc,
		built: make(map[string]builtCode),
		seeds: seeds,
		br:    breaker.New(opts.BreakerThreshold, opts.BreakerCooldown, brOpts...),
	}
	if err := w.register(ctx); err != nil {
		return err
	}
	// One backoff walks the whole lease loop: transport errors and
	// breaker-open waits stretch it, any successful round resets it.
	bo := opts.Retry.Start(seeds.next())
	for {
		if ctx.Err() != nil {
			w.deregister()
			return nil
		}
		if !w.br.Allow() {
			// Breaker open: the coordinator is unreachable by every
			// signal we have (heartbeats included). Wait out the backoff
			// instead of stacking doomed long-polls.
			bo.Sleep(ctx)
			continue
		}
		spec, leaseID, ttl, status, err := w.lease(ctx)
		switch {
		case ctx.Err() != nil:
			w.deregister()
			return nil
		case err != nil:
			// Coordinator unreachable; back off with jitter and retry. A
			// long outage just means this worker contributes nothing
			// until the coordinator returns.
			bo.Sleep(ctx)
			continue
		case status == http.StatusGone:
			// Stale identity (coordinator restarted, or we were
			// deregistered). Re-register for a fresh one.
			if err := w.register(ctx); err != nil {
				return err
			}
			continue
		case status == http.StatusServiceUnavailable:
			// Pool closed: the coordinator is done with remote work.
			return nil
		case status == http.StatusNoContent:
			bo.Reset()
			continue // empty poll; the server already waited
		case status != http.StatusOK:
			bo.Sleep(ctx)
			continue
		}
		bo.Reset()
		if err := w.serve(ctx, spec, leaseID, ttl); err != nil {
			if err == errKilled {
				return nil // simulated death: no drain, no deregister
			}
			return err
		}
	}
}

// serve executes one leased task and reports its outcome.
func (w *workerClient) serve(ctx context.Context, spec mapreduce.TaskSpec, leaseID string, ttl time.Duration) error {
	if w.opts.Hooks.Kill != nil && w.opts.Hooks.Kill(spec) {
		return errKilled
	}

	// The task must survive a drain signal: canceling ctx stops the
	// leasing loop, not work already leased. Losing the lease (410 on
	// heartbeat) or blowing the drain budget is what aborts execution.
	taskCtx, abandon := context.WithCancel(context.WithoutCancel(ctx)) //drybellvet:detached — drain finishes the leased task; only lease loss aborts it
	defer abandon()

	// Bound the drain: a task still executing DrainTimeout after the drain
	// signal is abandoned — its lease expires and the coordinator re-runs
	// it elsewhere — so a stuck task cannot hold SIGTERM hostage.
	if w.opts.DrainTimeout > 0 {
		go func() {
			select {
			case <-taskCtx.Done():
				return
			case <-ctx.Done():
			}
			t := time.NewTimer(w.opts.DrainTimeout)
			defer t.Stop()
			select {
			case <-taskCtx.Done():
			case <-t.C:
				abandon()
			}
		}()
	}

	hbEvery := w.opts.HeartbeatEvery
	if hbEvery <= 0 {
		hbEvery = ttl / 3
	}
	if hbEvery >= ttl {
		hbEvery = ttl / 2
	}
	hbDone := make(chan struct{})
	go w.heartbeatLoop(taskCtx, spec, leaseID, hbEvery, abandon, hbDone)

	if w.opts.Hooks.Stall != nil {
		w.opts.Hooks.Stall(spec)
	}

	result, taskErr := w.execute(taskCtx, spec)
	lost := taskCtx.Err() != nil // heartbeat got 410 and abandoned the task
	abandon()
	<-hbDone
	if lost {
		// Lease lost mid-task; nothing to report — the coordinator
		// already charged the attempt, and a completion would only
		// bounce off 410 anyway.
		return nil
	}
	w.complete(leaseID, result, taskErr)
	return nil
}

// heartbeatLoop renews the lease until the task context ends. A 410 means
// the lease is gone — this worker is a zombie for the task — so it aborts
// execution via abandon. Transport errors are tolerated: the next beat may
// get through, and if none do the lease expires, which is the same
// outcome a real partition produces.
func (w *workerClient) heartbeatLoop(ctx context.Context, spec mapreduce.TaskSpec, leaseID string, every time.Duration, abandon context.CancelFunc, done chan<- struct{}) {
	defer close(done)
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			if w.opts.Hooks.DropHeartbeats != nil && w.opts.Hooks.DropHeartbeats(spec) {
				continue
			}
			status, err := w.post("/heartbeat", heartbeatRequest{WorkerID: w.id, LeaseID: leaseID}, nil)
			if err == nil && status == http.StatusGone {
				abandon()
				return
			}
		}
	}
}

// execute resolves the spec's code key and runs the task against the
// coordinator's DFS gateway.
func (w *workerClient) execute(ctx context.Context, spec mapreduce.TaskSpec) (*mapreduce.TaskResult, error) {
	code, ok := w.built[spec.Code]
	if !ok {
		jc, found := w.opts.Jobs.Lookup(spec.Code)
		if !found {
			return nil, fmt.Errorf("remote: no job code %q on this worker (have %v) — deployment skew?", spec.Code, w.opts.Jobs.Keys())
		}
		mapper, reducer, err := jc.Build(ctx, w.fs, spec.InputBase)
		if err != nil {
			return nil, fmt.Errorf("remote: building job code %q: %w", spec.Code, err)
		}
		code = builtCode{mapper: mapper, reducer: reducer}
		w.built[spec.Code] = code
	}
	return mapreduce.ExecuteTask(ctx, w.fs, spec, spec.Job, code.mapper, code.reducer)
}

// register obtains a fresh worker identity, retrying on the shared backoff
// schedule while the coordinator is unreachable (it may still be binding
// its listener, or be mid-restart). Jittered backoff here is what keeps a
// coordinator restart from triggering a synchronized reconnect stampede
// across the fleet.
func (w *workerClient) register(ctx context.Context) error {
	bo := w.opts.Retry.Start(w.seeds.next())
	for {
		if w.br.Allow() {
			var resp registerResponse
			status, err := w.post("/register", registerRequest{Name: w.opts.Name}, &resp)
			if err == nil && status == http.StatusOK && resp.WorkerID != "" {
				w.id = resp.WorkerID
				return nil
			}
			if err == nil && status == http.StatusServiceUnavailable {
				return fmt.Errorf("remote: coordinator pool closed")
			}
		}
		if ctx.Err() != nil {
			return fmt.Errorf("remote: registering with %s: %w", w.opts.Coordinator, ctx.Err())
		}
		bo.Sleep(ctx)
	}
}

// deregister is the drain's last act; best-effort, the lease sweeper
// covers us if it never arrives.
func (w *workerClient) deregister() {
	_, _ = w.post("/deregister", deregisterRequest{WorkerID: w.id}, nil)
}

// lease long-polls the coordinator for one dispatch.
func (w *workerClient) lease(ctx context.Context) (spec mapreduce.TaskSpec, leaseID string, ttl time.Duration, status int, err error) {
	payload, err := json.Marshal(leaseRequest{WorkerID: w.id, Wait: w.opts.PollWait})
	if err != nil {
		return spec, "", 0, 0, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, w.opts.Coordinator+apiPrefix+"/lease", bytes.NewReader(payload))
	if err != nil {
		return spec, "", 0, 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := w.hc.Do(req)
	if err != nil {
		w.br.Failure()
		return spec, "", 0, 0, err
	}
	w.br.Success()
	defer drain(resp)
	if resp.StatusCode != http.StatusOK {
		return spec, "", 0, resp.StatusCode, nil
	}
	var lr leaseResponse
	if err := json.NewDecoder(resp.Body).Decode(&lr); err != nil {
		return spec, "", 0, 0, err
	}
	return lr.Spec, lr.LeaseID, lr.TTL, http.StatusOK, nil
}

// complete reports the attempt's outcome. A 410 means the lease expired
// first and the result is discarded — the attempt was already charged as
// failed and possibly re-run; this worker's output stays attempt-scoped
// and unpromoted. Transport errors retry on the shared backoff (reporting
// is idempotent: a duplicate of a landed completion bounces off 410)
// because an unreported completion wastes a whole executed attempt; if no
// retry lands, the lease sweeper turns the silence into a retried attempt,
// same as a death.
func (w *workerClient) complete(leaseID string, result *mapreduce.TaskResult, taskErr error) {
	req := completeRequest{WorkerID: w.id, LeaseID: leaseID, Result: result}
	if taskErr != nil {
		req.Result = nil
		req.Error = taskErr.Error()
	}
	bo := w.opts.Retry.Start(w.seeds.next())
	for attempt := 0; attempt < 4; attempt++ {
		if _, err := w.post("/complete", req, nil); err == nil {
			return
		}
		bo.Sleep(context.Background()) //drybellvet:detached — the report must outlive a drain signal; the attempt budget bounds the loop
	}
}

// post sends one JSON request to a control endpoint and decodes the
// response into out when it is non-nil and the status is 200. Every call
// feeds the coordinator-client breaker: a transport error is a failure,
// any HTTP answer — whatever its status — proves the coordinator is alive.
func (w *workerClient) post(endpoint string, body, out any) (int, error) {
	payload, err := json.Marshal(body)
	if err != nil {
		return 0, err
	}
	req, err := http.NewRequest(http.MethodPost, w.opts.Coordinator+apiPrefix+endpoint, bytes.NewReader(payload))
	if err != nil {
		return 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := w.hc.Do(req)
	if err != nil {
		w.br.Failure()
		return 0, err
	}
	w.br.Success()
	defer drain(resp)
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			return resp.StatusCode, err
		}
	}
	return resp.StatusCode, nil
}
