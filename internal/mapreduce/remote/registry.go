package remote

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"repro/internal/dfs"
	"repro/internal/mapreduce"
)

// JobCode builds the user functions a worker runs for one code key. The
// TaskSpec a worker leases carries only the key (mapreduce.Job.Code); the
// code itself — the Mapper/Reducer, and everything they close over — lives
// in the worker process, exactly as the paper's labeling functions are
// binaries deployed to the cluster rather than data shipped with tasks.
type JobCode struct {
	// Build constructs the job's Mapper and (for reducing jobs) Reducer.
	// It runs once per worker process per code key — the result is cached
	// across tasks — against the coordinator's DFS gateway and the job's
	// staged input base, so code that needs a whole-corpus pass before its
	// first task (a labeling function's corpus-fit stage) can take it here.
	// A map-only job may return a nil Reducer.
	Build func(ctx context.Context, fs dfs.FS, inputBase string) (mapreduce.Mapper, mapreduce.Reducer, error)
}

// Registry maps code keys to worker-side job implementations. A worker
// resolves every leased TaskSpec's Code here; a key the worker does not
// carry fails the attempt with a descriptive error (and, after the retry
// budget, the job), which is the deployment-skew signal an operator needs.
type Registry struct {
	mu    sync.RWMutex
	codes map[string]JobCode // guarded by mu
}

// NewRegistry returns an empty job-code registry.
func NewRegistry() *Registry {
	return &Registry{codes: make(map[string]JobCode)}
}

// Register adds code under key. Registering a key twice is an error: two
// implementations for one key means the worker no longer knows what the
// coordinator dispatched.
func (r *Registry) Register(key string, code JobCode) error {
	if key == "" {
		return fmt.Errorf("remote: job code needs a key")
	}
	if code.Build == nil {
		return fmt.Errorf("remote: job code %q has no Build", key)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.codes[key]; dup {
		return fmt.Errorf("remote: job code %q already registered", key)
	}
	r.codes[key] = code
	return nil
}

// Lookup returns the code registered under key.
func (r *Registry) Lookup(key string) (JobCode, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	c, ok := r.codes[key]
	return c, ok
}

// Keys returns the registered code keys, sorted.
func (r *Registry) Keys() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.codes))
	//drybellvet:ordered — collection only; sorted immediately below
	for k := range r.codes {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
