package remote

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/dfs"
	"repro/internal/obs"
)

// The DFS gateway serves the coordinator's filesystem to workers over HTTP,
// making them genuinely shared-nothing: a worker process needs exactly one
// address — its coordinator's — to read staged input, commit attempt-scoped
// output, and exchange shuffle data. The surface mirrors dfs.FS one
// endpoint per operation; a missing file is 404 plus a marker header so the
// client can reconstruct dfs.ErrNotExist faithfully.

// notExistHeader marks a 404 as a genuine dfs.ErrNotExist (as opposed to a
// mis-routed URL, which must not masquerade as a missing file).
const notExistHeader = "X-Drybell-Not-Exist"

// fsGateway is the server side: dfs.FS over HTTP.
type fsGateway struct {
	fs dfs.FS
}

// mount registers the gateway's routes on mux under apiPrefix/fs.
func (g *fsGateway) mount(mux *http.ServeMux) {
	mux.HandleFunc("GET "+apiPrefix+"/fs/file", g.read)
	mux.HandleFunc("PUT "+apiPrefix+"/fs/file", g.write)
	mux.HandleFunc("POST "+apiPrefix+"/fs/rename", g.rename)
	mux.HandleFunc("POST "+apiPrefix+"/fs/remove", g.remove)
	mux.HandleFunc("GET "+apiPrefix+"/fs/list", g.list)
	mux.HandleFunc("GET "+apiPrefix+"/fs/stat", g.stat)
}

// fsError maps a filesystem error onto the wire: ErrNotExist → 404 with the
// marker header, anything else → 500 with the message.
func fsError(w http.ResponseWriter, err error) {
	if dfs.IsNotExist(err) {
		w.Header().Set(notExistHeader, "1")
		http.Error(w, err.Error(), http.StatusNotFound)
		return
	}
	http.Error(w, err.Error(), http.StatusInternalServerError)
}

func (g *fsGateway) read(w http.ResponseWriter, r *http.Request) {
	data, err := g.fs.ReadFile(r.URL.Query().Get("path"))
	if err != nil {
		fsError(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	_, _ = w.Write(data)
}

func (g *fsGateway) write(w http.ResponseWriter, r *http.Request) {
	data, err := io.ReadAll(r.Body)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if err := g.fs.WriteFile(r.URL.Query().Get("path"), data); err != nil {
		fsError(w, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (g *fsGateway) rename(w http.ResponseWriter, r *http.Request) {
	var req renameRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if err := g.fs.Rename(req.Old, req.New); err != nil {
		fsError(w, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (g *fsGateway) remove(w http.ResponseWriter, r *http.Request) {
	var req removeRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if err := g.fs.Remove(req.Path); err != nil {
		fsError(w, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (g *fsGateway) list(w http.ResponseWriter, r *http.Request) {
	paths, err := g.fs.List(r.URL.Query().Get("prefix"))
	if err != nil {
		fsError(w, err)
		return
	}
	writeJSON(w, paths)
}

func (g *fsGateway) stat(w http.ResponseWriter, r *http.Request) {
	size, err := g.fs.Stat(r.URL.Query().Get("path"))
	if err != nil {
		fsError(w, err)
		return
	}
	writeJSON(w, statResponse{Size: size})
}

// writeJSON renders v as the response body.
func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(v)
}

// FSClient is the worker side of the gateway: a dfs.FS whose every
// operation is an HTTP call to the coordinator. Tasks executed with
// mapreduce.ExecuteTask run against it unchanged — the same specs, the same
// attempt-scoped commit discipline — which is what makes the remote backend
// indistinguishable from the in-process pool above the Worker seam.
//
// The client owns the remote tier's data-plane resilience:
//
//   - Idempotent operations (read, list, stat, and write — a full-content
//     overwrite) retry transport errors on the shared backoff Policy; rename
//     and remove are not idempotent and stay single-shot, surfacing their
//     transport errors to the attempt machinery instead.
//   - Reads can be hedged: when a response is still outstanding HedgeAfter
//     after dispatch, a second identical request races it and the first
//     answer wins. Only reads hedge — they are safe to issue twice — and the
//     loser is drained in the background so the transport can reuse its
//     connection.
type FSClient struct {
	base string
	hc   *http.Client

	retry       Policy
	maxAttempts int
	hedgeAfter  time.Duration
	seeds       *retrySeeds

	stats FSClientStats
	// Registry mirrors of the atomic stats; nil when no Metrics was given.
	mRetries, mHedges, mHedgeWins *obs.Counter
}

// FSClientStats counts the client's resilience decisions. Read with
// Stats(); updated atomically on the request path.
type FSClientStats struct {
	// Retries counts transport-error retries across all idempotent ops.
	Retries atomic.Int64
	// Hedges counts hedge requests launched; HedgeWins counts the subset
	// that answered before the primary.
	Hedges    atomic.Int64
	HedgeWins atomic.Int64
}

// FSClientOptions tunes the gateway client's resilience.
type FSClientOptions struct {
	// Retry is the backoff schedule for idempotent-operation retries.
	// Zero fields inherit DefaultPolicy.
	Retry Policy
	// MaxAttempts bounds tries per idempotent operation (first attempt
	// included). Defaults to 3; 1 disables retries.
	MaxAttempts int
	// HedgeAfter launches a second read when the first is still
	// outstanding after this long. 0 disables hedging.
	HedgeAfter time.Duration
	// Seed decorrelates this client's retry jitter from its neighbours'.
	// Defaults to a hash of base.
	Seed uint64
	// Metrics, when non-nil, mirrors the client's retry/hedge counters as
	// drybell_remote_client_* registry series.
	Metrics *obs.Registry
}

// NewFSClient returns a client for the gateway served at base (e.g.
// "http://127.0.0.1:9090") with default resilience (retries on, hedging
// off). A nil hc uses http.DefaultClient.
func NewFSClient(base string, hc *http.Client) *FSClient {
	return NewFSClientOpts(base, hc, FSClientOptions{})
}

// NewFSClientOpts is NewFSClient with explicit resilience options.
func NewFSClientOpts(base string, hc *http.Client, opts FSClientOptions) *FSClient {
	if hc == nil {
		hc = http.DefaultClient
	}
	if opts.MaxAttempts <= 0 {
		opts.MaxAttempts = 3
	}
	if opts.Seed == 0 {
		opts.Seed = SeedString(base)
	}
	c := &FSClient{
		base:        strings.TrimSuffix(base, "/"),
		hc:          hc,
		retry:       opts.Retry,
		maxAttempts: opts.MaxAttempts,
		hedgeAfter:  opts.HedgeAfter,
		seeds:       newRetrySeeds(opts.Seed),
	}
	if opts.Metrics != nil {
		c.mRetries = opts.Metrics.Counter("drybell_remote_client_retries_total",
			"Transport-error retries across idempotent gateway operations.")
		c.mHedges = opts.Metrics.Counter("drybell_remote_client_hedges_total",
			"Hedge requests launched for slow gateway reads.")
		c.mHedgeWins = opts.Metrics.Counter("drybell_remote_client_hedge_wins_total",
			"Hedged gateway reads where the duplicate answered first.")
	}
	return c
}

// Stats returns a snapshot of the client's retry and hedge counters.
func (c *FSClient) Stats() (retries, hedges, hedgeWins int64) {
	return c.stats.Retries.Load(), c.stats.Hedges.Load(), c.stats.HedgeWins.Load()
}

// fsURL builds a gateway URL with one query parameter.
func (c *FSClient) fsURL(endpoint, key, value string) string {
	return c.base + apiPrefix + "/fs/" + endpoint + "?" + key + "=" + url.QueryEscape(value)
}

// checkResp normalizes the error surface of an answered request: 404 with
// the not-exist marker becomes a dfs.PathError carrying dfs.ErrNotExist,
// any other non-2xx becomes a PathError wrapping the server's message.
func (c *FSClient) checkResp(resp *http.Response, op, path string) (*http.Response, error) {
	if resp.StatusCode >= 200 && resp.StatusCode < 300 {
		return resp, nil
	}
	msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
	resp.Body.Close()
	if resp.StatusCode == http.StatusNotFound && resp.Header.Get(notExistHeader) != "" {
		return nil, &dfs.PathError{Op: op, Path: path, Err: dfs.ErrNotExist}
	}
	return nil, &dfs.PathError{Op: op, Path: path,
		Err: fmt.Errorf("gateway: %s: %s", resp.Status, strings.TrimSpace(string(msg)))}
}

// do runs one single-shot request (the non-idempotent path: rename, remove).
func (c *FSClient) do(req *http.Request, op, path string) (*http.Response, error) {
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, &dfs.PathError{Op: op, Path: path, Err: err}
	}
	return c.checkResp(resp, op, path)
}

// hedgedDo dispatches one request (rebuilt per launch, so each copy owns
// its body) and, when hedging is on and no answer has arrived within
// hedgeAfter, races a second identical request. The first answer wins; a
// still-outstanding loser is drained in the background. Only transport
// errors count as "no answer" — an HTTP error status is an answer.
func (c *FSClient) hedgedDo(build func() (*http.Request, error)) (*http.Response, error) {
	if c.hedgeAfter <= 0 {
		req, err := build()
		if err != nil {
			return nil, err
		}
		return c.hc.Do(req)
	}
	type answer struct {
		resp   *http.Response
		err    error
		hedged bool
	}
	ch := make(chan answer, 2)
	dispatch := func(hedged bool) {
		req, err := build()
		if err != nil {
			ch <- answer{err: err, hedged: hedged}
			return
		}
		resp, err := c.hc.Do(req)
		ch <- answer{resp: resp, err: err, hedged: hedged}
	}
	go dispatch(false)
	timer := time.NewTimer(c.hedgeAfter)
	defer timer.Stop()
	outstanding, hedged := 1, false
	var firstErr error
	for {
		select {
		case <-timer.C:
			if !hedged {
				hedged = true
				outstanding++
				c.stats.Hedges.Add(1)
				if c.mHedges != nil {
					c.mHedges.Inc()
				}
				go dispatch(true)
			}
		case a := <-ch:
			outstanding--
			if a.err == nil {
				if a.hedged {
					c.stats.HedgeWins.Add(1)
					if c.mHedgeWins != nil {
						c.mHedgeWins.Inc()
					}
				}
				if outstanding > 0 {
					go func() { // drain the loser so its connection is reusable
						if b := <-ch; b.resp != nil {
							drain(b.resp)
						}
					}()
				}
				return a.resp, nil
			}
			if firstErr == nil {
				firstErr = a.err
			}
			if outstanding == 0 {
				return nil, firstErr
			}
		}
	}
}

// doResilient is the idempotent-operation path: hedged dispatch (reads
// only) plus transport-error retries on the shared backoff policy. Error
// statuses are answers — the gateway spoke — and are never retried; only a
// transport that failed to deliver any response is.
func (c *FSClient) doResilient(op, path string, hedge bool, build func() (*http.Request, error)) (*http.Response, error) {
	var bo *Backoff
	for attempt := 1; ; attempt++ {
		var resp *http.Response
		var err error
		if hedge {
			resp, err = c.hedgedDo(build)
		} else {
			var req *http.Request
			if req, err = build(); err == nil {
				resp, err = c.hc.Do(req)
			}
		}
		if err == nil {
			return c.checkResp(resp, op, path)
		}
		if attempt >= c.maxAttempts {
			return nil, &dfs.PathError{Op: op, Path: path, Err: err}
		}
		c.stats.Retries.Add(1)
		if c.mRetries != nil {
			c.mRetries.Inc()
		}
		if bo == nil {
			bo = c.retry.Start(c.seeds.next())
		}
		bo.Sleep(context.Background()) //drybellvet:detached — dfs.FS methods carry no context; the attempt budget bounds the loop
	}
}

// doJSON posts body as JSON and discards the response.
func (c *FSClient) doJSON(endpoint, op, path string, body any) error {
	payload, err := json.Marshal(body)
	if err != nil {
		return &dfs.PathError{Op: op, Path: path, Err: err}
	}
	req, err := http.NewRequest(http.MethodPost, c.base+apiPrefix+"/fs/"+endpoint, bytes.NewReader(payload))
	if err != nil {
		return &dfs.PathError{Op: op, Path: path, Err: err}
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.do(req, op, path)
	if err != nil {
		return err
	}
	drain(resp)
	return nil
}

// WriteFile implements dfs.FS. A write is a full-content overwrite —
// idempotent — so transport errors retry on the shared backoff policy.
func (c *FSClient) WriteFile(path string, data []byte) error {
	resp, err := c.doResilient("write", path, false, func() (*http.Request, error) {
		req, err := http.NewRequest(http.MethodPut, c.fsURL("file", "path", path), bytes.NewReader(data))
		if err != nil {
			return nil, err
		}
		req.Header.Set("Content-Type", "application/octet-stream")
		return req, nil
	})
	if err != nil {
		return err
	}
	drain(resp)
	return nil
}

// ReadFile implements dfs.FS. Reads retry transport errors and, when
// configured, hedge slow responses.
func (c *FSClient) ReadFile(path string) ([]byte, error) {
	resp, err := c.doResilient("read", path, true, func() (*http.Request, error) {
		return http.NewRequest(http.MethodGet, c.fsURL("file", "path", path), nil)
	})
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, &dfs.PathError{Op: "read", Path: path, Err: err}
	}
	return data, nil
}

// Rename implements dfs.FS. Renames are not idempotent (a retried rename
// whose first try landed answers ErrNotExist), so transport errors surface
// to the attempt machinery instead of retrying blind.
func (c *FSClient) Rename(oldPath, newPath string) error {
	return c.doJSON("rename", "rename", oldPath, renameRequest{Old: oldPath, New: newPath})
}

// Remove implements dfs.FS. Like Rename, not retried.
func (c *FSClient) Remove(path string) error {
	return c.doJSON("remove", "remove", path, removeRequest{Path: path})
}

// List implements dfs.FS. Retried and hedged like ReadFile.
func (c *FSClient) List(prefix string) ([]string, error) {
	resp, err := c.doResilient("list", prefix, true, func() (*http.Request, error) {
		return http.NewRequest(http.MethodGet, c.fsURL("list", "prefix", prefix), nil)
	})
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var paths []string
	if err := json.NewDecoder(resp.Body).Decode(&paths); err != nil {
		return nil, &dfs.PathError{Op: "list", Path: prefix, Err: err}
	}
	return paths, nil
}

// Stat implements dfs.FS. Retried and hedged like ReadFile.
func (c *FSClient) Stat(path string) (int64, error) {
	resp, err := c.doResilient("stat", path, true, func() (*http.Request, error) {
		return http.NewRequest(http.MethodGet, c.fsURL("stat", "path", path), nil)
	})
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	var st statResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return 0, &dfs.PathError{Op: "stat", Path: path, Err: err}
	}
	return st.Size, nil
}

// drain consumes and closes a response body so the transport can reuse the
// connection.
func drain(resp *http.Response) {
	_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<20))
	resp.Body.Close()
}
