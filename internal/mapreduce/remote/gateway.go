package remote

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"

	"repro/internal/dfs"
)

// The DFS gateway serves the coordinator's filesystem to workers over HTTP,
// making them genuinely shared-nothing: a worker process needs exactly one
// address — its coordinator's — to read staged input, commit attempt-scoped
// output, and exchange shuffle data. The surface mirrors dfs.FS one
// endpoint per operation; a missing file is 404 plus a marker header so the
// client can reconstruct dfs.ErrNotExist faithfully.

// notExistHeader marks a 404 as a genuine dfs.ErrNotExist (as opposed to a
// mis-routed URL, which must not masquerade as a missing file).
const notExistHeader = "X-Drybell-Not-Exist"

// fsGateway is the server side: dfs.FS over HTTP.
type fsGateway struct {
	fs dfs.FS
}

// mount registers the gateway's routes on mux under apiPrefix/fs.
func (g *fsGateway) mount(mux *http.ServeMux) {
	mux.HandleFunc("GET "+apiPrefix+"/fs/file", g.read)
	mux.HandleFunc("PUT "+apiPrefix+"/fs/file", g.write)
	mux.HandleFunc("POST "+apiPrefix+"/fs/rename", g.rename)
	mux.HandleFunc("POST "+apiPrefix+"/fs/remove", g.remove)
	mux.HandleFunc("GET "+apiPrefix+"/fs/list", g.list)
	mux.HandleFunc("GET "+apiPrefix+"/fs/stat", g.stat)
}

// fsError maps a filesystem error onto the wire: ErrNotExist → 404 with the
// marker header, anything else → 500 with the message.
func fsError(w http.ResponseWriter, err error) {
	if dfs.IsNotExist(err) {
		w.Header().Set(notExistHeader, "1")
		http.Error(w, err.Error(), http.StatusNotFound)
		return
	}
	http.Error(w, err.Error(), http.StatusInternalServerError)
}

func (g *fsGateway) read(w http.ResponseWriter, r *http.Request) {
	data, err := g.fs.ReadFile(r.URL.Query().Get("path"))
	if err != nil {
		fsError(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	_, _ = w.Write(data)
}

func (g *fsGateway) write(w http.ResponseWriter, r *http.Request) {
	data, err := io.ReadAll(r.Body)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if err := g.fs.WriteFile(r.URL.Query().Get("path"), data); err != nil {
		fsError(w, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (g *fsGateway) rename(w http.ResponseWriter, r *http.Request) {
	var req renameRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if err := g.fs.Rename(req.Old, req.New); err != nil {
		fsError(w, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (g *fsGateway) remove(w http.ResponseWriter, r *http.Request) {
	var req removeRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if err := g.fs.Remove(req.Path); err != nil {
		fsError(w, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (g *fsGateway) list(w http.ResponseWriter, r *http.Request) {
	paths, err := g.fs.List(r.URL.Query().Get("prefix"))
	if err != nil {
		fsError(w, err)
		return
	}
	writeJSON(w, paths)
}

func (g *fsGateway) stat(w http.ResponseWriter, r *http.Request) {
	size, err := g.fs.Stat(r.URL.Query().Get("path"))
	if err != nil {
		fsError(w, err)
		return
	}
	writeJSON(w, statResponse{Size: size})
}

// writeJSON renders v as the response body.
func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(v)
}

// FSClient is the worker side of the gateway: a dfs.FS whose every
// operation is an HTTP call to the coordinator. Tasks executed with
// mapreduce.ExecuteTask run against it unchanged — the same specs, the same
// attempt-scoped commit discipline — which is what makes the remote backend
// indistinguishable from the in-process pool above the Worker seam.
type FSClient struct {
	base string
	hc   *http.Client
}

// NewFSClient returns a client for the gateway served at base (e.g.
// "http://127.0.0.1:9090"). A nil hc uses http.DefaultClient.
func NewFSClient(base string, hc *http.Client) *FSClient {
	if hc == nil {
		hc = http.DefaultClient
	}
	return &FSClient{base: strings.TrimSuffix(base, "/"), hc: hc}
}

// fsURL builds a gateway URL with one query parameter.
func (c *FSClient) fsURL(endpoint, key, value string) string {
	return c.base + apiPrefix + "/fs/" + endpoint + "?" + key + "=" + url.QueryEscape(value)
}

// do runs one request and normalizes the error surface: 404 with the
// not-exist marker becomes a dfs.PathError carrying dfs.ErrNotExist, any
// other non-2xx becomes a PathError wrapping the server's message.
func (c *FSClient) do(req *http.Request, op, path string) (*http.Response, error) {
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, &dfs.PathError{Op: op, Path: path, Err: err}
	}
	if resp.StatusCode >= 200 && resp.StatusCode < 300 {
		return resp, nil
	}
	msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
	resp.Body.Close()
	if resp.StatusCode == http.StatusNotFound && resp.Header.Get(notExistHeader) != "" {
		return nil, &dfs.PathError{Op: op, Path: path, Err: dfs.ErrNotExist}
	}
	return nil, &dfs.PathError{Op: op, Path: path,
		Err: fmt.Errorf("gateway: %s: %s", resp.Status, strings.TrimSpace(string(msg)))}
}

// doJSON posts body as JSON and discards the response.
func (c *FSClient) doJSON(endpoint, op, path string, body any) error {
	payload, err := json.Marshal(body)
	if err != nil {
		return &dfs.PathError{Op: op, Path: path, Err: err}
	}
	req, err := http.NewRequest(http.MethodPost, c.base+apiPrefix+"/fs/"+endpoint, bytes.NewReader(payload))
	if err != nil {
		return &dfs.PathError{Op: op, Path: path, Err: err}
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.do(req, op, path)
	if err != nil {
		return err
	}
	drain(resp)
	return nil
}

// WriteFile implements dfs.FS.
func (c *FSClient) WriteFile(path string, data []byte) error {
	req, err := http.NewRequest(http.MethodPut, c.fsURL("file", "path", path), bytes.NewReader(data))
	if err != nil {
		return &dfs.PathError{Op: "write", Path: path, Err: err}
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	resp, err := c.do(req, "write", path)
	if err != nil {
		return err
	}
	drain(resp)
	return nil
}

// ReadFile implements dfs.FS.
func (c *FSClient) ReadFile(path string) ([]byte, error) {
	req, err := http.NewRequest(http.MethodGet, c.fsURL("file", "path", path), nil)
	if err != nil {
		return nil, &dfs.PathError{Op: "read", Path: path, Err: err}
	}
	resp, err := c.do(req, "read", path)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, &dfs.PathError{Op: "read", Path: path, Err: err}
	}
	return data, nil
}

// Rename implements dfs.FS.
func (c *FSClient) Rename(oldPath, newPath string) error {
	return c.doJSON("rename", "rename", oldPath, renameRequest{Old: oldPath, New: newPath})
}

// Remove implements dfs.FS.
func (c *FSClient) Remove(path string) error {
	return c.doJSON("remove", "remove", path, removeRequest{Path: path})
}

// List implements dfs.FS.
func (c *FSClient) List(prefix string) ([]string, error) {
	req, err := http.NewRequest(http.MethodGet, c.fsURL("list", "prefix", prefix), nil)
	if err != nil {
		return nil, &dfs.PathError{Op: "list", Path: prefix, Err: err}
	}
	resp, err := c.do(req, "list", prefix)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var paths []string
	if err := json.NewDecoder(resp.Body).Decode(&paths); err != nil {
		return nil, &dfs.PathError{Op: "list", Path: prefix, Err: err}
	}
	return paths, nil
}

// Stat implements dfs.FS.
func (c *FSClient) Stat(path string) (int64, error) {
	req, err := http.NewRequest(http.MethodGet, c.fsURL("stat", "path", path), nil)
	if err != nil {
		return 0, &dfs.PathError{Op: "stat", Path: path, Err: err}
	}
	resp, err := c.do(req, "stat", path)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	var st statResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return 0, &dfs.PathError{Op: "stat", Path: path, Err: err}
	}
	return st.Size, nil
}

// drain consumes and closes a response body so the transport can reuse the
// connection.
func drain(resp *http.Response) {
	_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<20))
	resp.Body.Close()
}
