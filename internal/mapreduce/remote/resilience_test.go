package remote

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/chaos"
	"repro/internal/dfs"
	"repro/internal/mapreduce"
)

// TestLeaseSweeperHeartbeatRaceSingleExpiry: an expired lease can be
// noticed by two parties at once — the sweeper's periodic scan and the
// on-access check a late heartbeat triggers. Whichever wins, the expiry
// must be charged exactly once: one expiration counted, one dispatch
// failure (one retry-budget decrement), and the heartbeat answered 410 as
// a zombie. Double-charging would burn two attempts from the task's budget
// for a single worker silence.
func TestLeaseSweeperHeartbeatRaceSingleExpiry(t *testing.T) {
	// The interleaving is scheduler-chosen; repeat to visit both orders.
	for round := 0; round < 10; round++ {
		h := newLeaseHarness(t)
		lr := h.lease(t)
		h.clock.Advance(1100 * time.Millisecond) // past the 1s TTL

		var wg sync.WaitGroup
		var hbStatus atomic.Int32
		wg.Add(2)
		go func() {
			defer wg.Done()
			h.pool.sweep()
		}()
		go func() {
			defer wg.Done()
			hbStatus.Store(int32(h.heartbeat(t, h.worker, lr.LeaseID)))
		}()
		wg.Wait()

		if st := hbStatus.Load(); st != http.StatusGone {
			t.Fatalf("round %d: racing heartbeat = %d, want 410", round, st)
		}
		err := <-h.outcome
		if err == nil || !strings.Contains(err.Error(), "expired") {
			t.Fatalf("round %d: dispatch outcome = %v, want lease-expired error", round, err)
		}
		select {
		case err := <-h.outcome:
			t.Fatalf("round %d: dispatch finished twice; second outcome %v", round, err)
		default:
		}
		if got := h.pool.metrics.expirations.Value(); got != 1 {
			t.Fatalf("round %d: expirations = %d, want exactly 1", round, got)
		}
		if got := h.pool.metrics.zombies.Value(); got != 1 {
			t.Fatalf("round %d: zombie rejections = %d, want exactly 1", round, got)
		}
	}
}

// TestRemoteByteIdenticalUnderNetworkFaults is the tentpole wire-fault
// check: every HTTP call a worker makes — register, lease, heartbeat,
// complete, and all DFS gateway I/O — runs through a fault-injecting
// transport that drops and delays requests on a seeded schedule. The
// shared backoff policy, the coordinator-client breaker, lease expiry, and
// first-commit-wins must absorb all of it and still commit output
// byte-identical to a fault-free in-process run.
func TestRemoteByteIdenticalUnderNetworkFaults(t *testing.T) {
	words := testWords(120)
	want, wantCounters := referenceOutput(t, words, 6, 4)

	fs := dfs.NewMem()
	stageWords(t, fs, "in/w", words, 6)

	pool, err := NewPool(PoolOptions{FS: fs, Slots: 4, LeaseTTL: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(pool.Handler())
	ctx, cancel := context.WithCancel(context.Background())

	faults := chaos.NewTransport(7, srv.Client().Transport)
	faults.DropRate = 0.05
	faults.DelayRate = 0.10
	faults.Delay = 2 * time.Millisecond

	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			err := RunWorker(ctx, WorkerOptions{
				Coordinator: srv.URL,
				Name:        fmt.Sprintf("chaos-worker-%d", i),
				Jobs:        testRegistry(t),
				Client:      &http.Client{Transport: faults},
				PollWait:    100 * time.Millisecond,
				Retry:       Policy{Base: 2 * time.Millisecond, Max: 50 * time.Millisecond},
				// A small threshold and cooldown keep breaker trips — which
				// injected drops will cause — from stalling the test.
				BreakerThreshold: 3,
				BreakerCooldown:  50 * time.Millisecond,
				HedgeReads:       20 * time.Millisecond,
			})
			// A worker canceled mid-register reports the cancellation;
			// anything else is a real failure.
			if err != nil && !errors.Is(err, context.Canceled) {
				t.Errorf("worker %d: %v", i, err)
			}
		}(i)
	}
	t.Cleanup(func() {
		cancel()
		wg.Wait()
		pool.Close()
		srv.Close()
	})
	if err := pool.AwaitWorkers(ctx, 2); err != nil {
		t.Fatal(err)
	}

	job := remoteJob(fs, pool, 4)
	job.MaxAttempts = 8 // headroom: dropped renames/completes cost attempts
	res, err := mapreduce.Run(job)
	if err != nil {
		t.Fatal(err)
	}
	assertSameOutput(t, fs, "out/w", want)
	if got, w := res.Counters["records-in"], wantCounters["records-in"]; got != w {
		t.Errorf("records-in = %d, want %d", got, w)
	}
	if faults.Dropped.Load() == 0 {
		t.Error("fault injector never dropped a request; the run proves nothing")
	}
}
