// Package remote is the networked multi-node worker backend for the
// MapReduce runtime: it turns the paper's §5.4 production story — a fleet
// of shared-nothing workers exchanging data only through a distributed
// filesystem — from an in-process simulation into real processes talking
// HTTP.
//
// The coordinator side is a Pool. It serves one HTTP surface (Handler)
// carrying both the control plane and the data plane:
//
//   - worker registration and deregistration (every registration mints a
//     fresh worker identity, so a restarted worker can never be confused
//     with its previous incarnation),
//   - task leasing: registered workers long-poll for task dispatches; each
//     dispatch is covered by a lease that the worker must renew with
//     heartbeats. A lease that expires — the worker died, or a partition is
//     dropping its heartbeats — fails the dispatch, and the coordinator's
//     existing retry/straggler machinery re-executes the task exactly as it
//     would after an in-process worker crash. A zombie worker whose lease
//     expired gets 410 Gone for every later heartbeat or completion, so its
//     output can never displace the promoted attempt's.
//   - a minimal DFS gateway exposing the coordinator's dfs.FS, so workers
//     are genuinely shared-nothing: all task input, attempt-scoped output,
//     and shuffle data flows through the coordinator's filesystem.
//
// Pool.Workers returns slot proxies implementing mapreduce.Worker, so a
// remote job is just mapreduce.Job{Workers: pool.Workers(), Code: key}:
// retries, speculative straggler re-execution, first-commit-wins promotion,
// attempt isolation, and checkpoint/resume all apply unchanged across
// process boundaries.
//
// The worker side is RunWorker: a loop that registers with the coordinator,
// leases dispatches, resolves each TaskSpec's Code key in its job-code
// Registry (user functions live worker-side; only their names travel), and
// executes it with mapreduce.ExecuteTask against the coordinator's DFS
// gateway while a background goroutine renews the lease. On context
// cancellation (SIGTERM in drybelld) the worker drains gracefully: it stops
// leasing, finishes the task it holds, deregisters, and returns nil.
package remote

import (
	"time"

	"repro/internal/mapreduce"
)

// Protocol version prefix for every coordinator endpoint.
const apiPrefix = "/remote/v1"

// Wire types. All endpoints are POST with JSON bodies except the DFS
// gateway's file reads/writes, which carry raw bytes.
type (
	// registerRequest announces a worker. Name is advisory (diagnostics);
	// identity is the WorkerID the coordinator mints in response.
	registerRequest struct {
		Name string `json:"name"`
	}
	registerResponse struct {
		WorkerID string `json:"worker_id"`
	}

	// deregisterRequest removes a worker on graceful drain.
	deregisterRequest struct {
		WorkerID string `json:"worker_id"`
	}

	// leaseRequest asks for one task dispatch, long-polling up to Wait.
	leaseRequest struct {
		WorkerID string        `json:"worker_id"`
		Wait     time.Duration `json:"wait"`
	}
	// leaseResponse hands out a dispatch: the spec to execute and the lease
	// covering it. The worker must heartbeat well within TTL or the
	// coordinator declares it dead and re-executes the task elsewhere.
	leaseResponse struct {
		LeaseID string             `json:"lease_id"`
		TTL     time.Duration      `json:"ttl"`
		Spec    mapreduce.TaskSpec `json:"spec"`
	}

	// heartbeatRequest renews a lease.
	heartbeatRequest struct {
		WorkerID string `json:"worker_id"`
		LeaseID  string `json:"lease_id"`
	}

	// completeRequest reports a finished attempt: the result on success, or
	// the error that failed it (charged against the task's retry budget).
	completeRequest struct {
		WorkerID string                `json:"worker_id"`
		LeaseID  string                `json:"lease_id"`
		Result   *mapreduce.TaskResult `json:"result,omitempty"`
		Error    string                `json:"error,omitempty"`
	}

	// renameRequest / removeRequest are the DFS gateway's mutation bodies.
	renameRequest struct {
		Old string `json:"old"`
		New string `json:"new"`
	}
	removeRequest struct {
		Path string `json:"path"`
	}
	statResponse struct {
		Size int64 `json:"size"`
	}
)
