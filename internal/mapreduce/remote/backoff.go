package remote

import (
	"context"
	"hash/fnv"
	"math/rand"
	"sync"
	"time"
)

// Policy is a shared exponential-backoff-with-jitter schedule. Every retry
// loop that talks to the coordinator — register, lease, heartbeat, complete,
// and the DFS gateway client — draws its sleeps from one Policy, so a
// coordinator restart produces a decorrelated trickle of reconnects instead
// of a synchronized stampede of naked 100ms retries.
//
// The schedule is the standard one: attempt n sleeps Base·Multiplier^n,
// capped at Max, with the final value drawn uniformly from
// [d·(1-Jitter), d]. Jitter pulls sleeps *down* from the deterministic
// ceiling, so Max remains a hard bound on any single sleep.
type Policy struct {
	// Base is the first sleep. Defaults to 50ms.
	Base time.Duration
	// Max caps every sleep. Defaults to 2s.
	Max time.Duration
	// Multiplier grows the sleep per attempt. Defaults to 2.
	Multiplier float64
	// Jitter in (0,1] is the fraction of each sleep that is randomized.
	// Zero inherits the default 0.5 — the safe choice for a fleet —
	// JitterNone disables it (tests that need exact schedules).
	Jitter float64
}

// JitterNone as a Policy.Jitter value disables jitter entirely.
const JitterNone = -1.0

// DefaultPolicy is the schedule the worker loops and gateway client use
// when none is configured: 50ms doubling to a 2s ceiling, half jittered.
var DefaultPolicy = Policy{Base: 50 * time.Millisecond, Max: 2 * time.Second, Multiplier: 2, Jitter: 0.5}

// withDefaults fills zero fields from DefaultPolicy.
func (p Policy) withDefaults() Policy {
	if p.Base <= 0 {
		p.Base = DefaultPolicy.Base
	}
	if p.Max <= 0 {
		p.Max = DefaultPolicy.Max
	}
	if p.Multiplier < 1 {
		p.Multiplier = DefaultPolicy.Multiplier
	}
	switch {
	case p.Jitter == 0:
		p.Jitter = DefaultPolicy.Jitter
	case p.Jitter < 0:
		p.Jitter = 0 // JitterNone
	case p.Jitter > 1:
		p.Jitter = 1
	}
	return p
}

// Backoff is one retry loop's stateful walk along a Policy's schedule. Not
// safe for concurrent use; each loop owns its own (see Policy.Start).
type Backoff struct {
	policy  Policy
	attempt int
	rng     *rand.Rand
}

// Start begins a schedule whose jitter stream is derived from seed —
// deterministic for a fixed seed, decorrelated across seeds. Callers seed
// with their identity (worker name, client key) so a fleet restarting
// together fans out instead of thundering back in lockstep.
func (p Policy) Start(seed uint64) *Backoff {
	return &Backoff{
		policy: p.withDefaults(),
		rng:    rand.New(rand.NewSource(int64(seed))), // explicitly seeded: jitter stream, not data-plane
	}
}

// SeedString hashes an identity string into a Start seed.
func SeedString(s string) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(s))
	return h.Sum64()
}

// Next returns the sleep for the current attempt and advances the schedule.
func (b *Backoff) Next() time.Duration {
	p := b.policy
	d := float64(p.Base)
	for i := 0; i < b.attempt; i++ {
		d *= p.Multiplier
		if d >= float64(p.Max) {
			d = float64(p.Max)
			break
		}
	}
	if d > float64(p.Max) {
		d = float64(p.Max)
	}
	b.attempt++
	if p.Jitter > 0 {
		d -= b.rng.Float64() * p.Jitter * d
	}
	if d < 1 {
		d = 1
	}
	return time.Duration(d)
}

// Attempt reports how many sleeps have been taken.
func (b *Backoff) Attempt() int { return b.attempt }

// Reset rewinds the schedule to the first attempt — called after a success
// so the next failure starts cheap again.
func (b *Backoff) Reset() { b.attempt = 0 }

// Sleep blocks for the next scheduled backoff or until ctx ends. It
// reports false when ctx ended first.
func (b *Backoff) Sleep(ctx context.Context) bool {
	t := time.NewTimer(b.Next())
	defer t.Stop()
	select {
	case <-ctx.Done():
		return false
	case <-t.C:
		return true
	}
}

// retrySeeds hands out decorrelated sub-seeds for components that share one
// identity seed (a worker's register loop, its gateway client, ...) without
// the components consuming each other's jitter streams.
type retrySeeds struct {
	mu   sync.Mutex
	rng  *rand.Rand
	base uint64
}

func newRetrySeeds(base uint64) *retrySeeds {
	return &retrySeeds{rng: rand.New(rand.NewSource(int64(base))), base: base} // explicitly seeded
}

func (s *retrySeeds) next() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.rng.Uint64()
}
