package remote

import (
	"context"
	"testing"
	"time"
)

func TestBackoffScheduleGrowsAndCaps(t *testing.T) {
	p := Policy{Base: 10 * time.Millisecond, Max: 80 * time.Millisecond, Multiplier: 2, Jitter: JitterNone}
	b := p.Start(1)
	want := []time.Duration{10, 20, 40, 80, 80, 80}
	for i, w := range want {
		got := b.Next()
		if got != w*time.Millisecond {
			t.Fatalf("attempt %d: sleep = %v, want %v", i, got, w*time.Millisecond)
		}
	}
}

func TestBackoffJitterBoundedAndDeterministic(t *testing.T) {
	p := Policy{Base: 100 * time.Millisecond, Max: time.Second, Multiplier: 2, Jitter: 0.5}
	a, b := p.Start(42), p.Start(42)
	other := p.Start(7)
	var diverged bool
	for i := 0; i < 16; i++ {
		da, db, dc := a.Next(), b.Next(), other.Next()
		if da != db {
			t.Fatalf("attempt %d: same seed diverged: %v vs %v", i, da, db)
		}
		if da != dc {
			diverged = true
		}
		if da > time.Second {
			t.Fatalf("attempt %d: sleep %v exceeds Max", i, da)
		}
		if da < 1 {
			t.Fatalf("attempt %d: sleep %v below floor", i, da)
		}
	}
	if !diverged {
		t.Fatal("different seeds produced identical jitter streams")
	}
}

func TestBackoffJitterStaysWithinFraction(t *testing.T) {
	p := Policy{Base: 100 * time.Millisecond, Max: time.Minute, Multiplier: 1, Jitter: 0.25}
	b := p.Start(3)
	for i := 0; i < 64; i++ {
		d := b.Next()
		if d > 100*time.Millisecond || d < 75*time.Millisecond {
			t.Fatalf("attempt %d: sleep %v outside [75ms, 100ms]", i, d)
		}
	}
}

func TestBackoffResetRewinds(t *testing.T) {
	p := Policy{Base: 10 * time.Millisecond, Max: time.Second, Multiplier: 2, Jitter: JitterNone}
	b := p.Start(1)
	b.Next()
	b.Next()
	if b.Attempt() != 2 {
		t.Fatalf("Attempt() = %d, want 2", b.Attempt())
	}
	b.Reset()
	if got := b.Next(); got != 10*time.Millisecond {
		t.Fatalf("after Reset: sleep = %v, want 10ms", got)
	}
}

func TestBackoffSleepHonorsContext(t *testing.T) {
	p := Policy{Base: time.Hour, Max: time.Hour, Multiplier: 2, Jitter: JitterNone}
	b := p.Start(1)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	if b.Sleep(ctx) {
		t.Fatal("Sleep returned true under a canceled context")
	}
	if time.Since(start) > time.Second {
		t.Fatal("Sleep did not wake promptly on cancellation")
	}
}

func TestPolicyDefaults(t *testing.T) {
	b := Policy{}.Start(1)
	if b.policy.Base != DefaultPolicy.Base || b.policy.Max != DefaultPolicy.Max ||
		b.policy.Multiplier != DefaultPolicy.Multiplier || b.policy.Jitter != DefaultPolicy.Jitter {
		t.Fatalf("zero Policy did not inherit defaults: %+v", b.policy)
	}
}

func TestSeedStringDistinct(t *testing.T) {
	if SeedString("worker-1") == SeedString("worker-2") {
		t.Fatal("distinct identities hashed to the same seed")
	}
}
