package remote

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/dfs"
	"repro/internal/mapreduce"
	"repro/internal/obs"
)

// --- fixtures ---

// wordCountFuncs is the canonical test job's user functions, shared by the
// in-process reference runs and the worker-side job code.
func wordCountFuncs() (mapreduce.Mapper, mapreduce.Reducer) {
	mapper := mapreduce.MapFunc(func(ctx *mapreduce.TaskContext, rec []byte, emit mapreduce.Emitter) error {
		ctx.Counters.Inc("records-in", 1)
		emit(string(rec), []byte{1})
		return nil
	})
	reducer := mapreduce.ReduceFunc(func(ctx *mapreduce.TaskContext, key string, values [][]byte, emit mapreduce.Emitter) error {
		emit(key, []byte(fmt.Sprintf("%s=%d", key, len(values))))
		return nil
	})
	return mapper, reducer
}

// testRegistry carries the wordcount code under the key remote jobs use.
func testRegistry(t *testing.T) *Registry {
	t.Helper()
	reg := NewRegistry()
	err := reg.Register("wordcount", JobCode{
		Build: func(ctx context.Context, fs dfs.FS, inputBase string) (mapreduce.Mapper, mapreduce.Reducer, error) {
			m, r := wordCountFuncs()
			return m, r, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return reg
}

func stageWords(t *testing.T, fs dfs.FS, base string, words []string, shards int) {
	t.Helper()
	recs := make([][]byte, len(words))
	for i, w := range words {
		recs[i] = []byte(w)
	}
	if err := mapreduce.WriteInput(fs, base, recs, shards); err != nil {
		t.Fatal(err)
	}
}

func testWords(n int) []string {
	words := make([]string, n)
	for i := range words {
		words[i] = fmt.Sprintf("w%d", i%13)
	}
	return words
}

// referenceOutput runs wordcount in-process on a fresh Mem FS and returns
// the committed output bytes: the target every remote run must match.
func referenceOutput(t *testing.T, words []string, shards, reducers int) ([][]byte, map[string]int64) {
	t.Helper()
	fs := dfs.NewMem()
	stageWords(t, fs, "in/w", words, shards)
	mapper, reducer := wordCountFuncs()
	res, err := mapreduce.Run(mapreduce.Job{
		Name: "wordcount", FS: fs,
		InputBase: "in/w", OutputBase: "out/w",
		NumReducers: reducers, Parallelism: 4,
		Mapper: mapper, Reducer: reducer,
	})
	if err != nil {
		t.Fatal(err)
	}
	out, err := mapreduce.ReadOutput(fs, "out/w")
	if err != nil {
		t.Fatal(err)
	}
	return out, res.Counters
}

func assertSameOutput(t *testing.T, fs dfs.FS, base string, want [][]byte) {
	t.Helper()
	got, err := mapreduce.ReadOutput(fs, base)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("output records = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if !bytes.Equal(got[i], want[i]) {
			t.Fatalf("output[%d] = %q, want %q", i, got[i], want[i])
		}
	}
}

// cluster is one coordinator plus n worker "processes" (goroutines talking
// real HTTP through an httptest server — same wire protocol, same
// serialization, same shared-nothing data plane as separate processes).
type cluster struct {
	pool *Pool
	srv  *httptest.Server
	stop context.CancelFunc
	wg   sync.WaitGroup
}

// startCluster brings up a pool and one RunWorker loop per entry in hooks
// (use a zero WorkerHooks for a healthy worker).
func startCluster(t *testing.T, opts PoolOptions, reg *Registry, hooks []WorkerHooks) *cluster {
	t.Helper()
	pool, err := NewPool(opts)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(pool.Handler())
	ctx, cancel := context.WithCancel(context.Background())
	c := &cluster{pool: pool, srv: srv, stop: cancel}
	for i, h := range hooks {
		c.wg.Add(1)
		go func(i int, h WorkerHooks) {
			defer c.wg.Done()
			err := RunWorker(ctx, WorkerOptions{
				Coordinator: srv.URL,
				Name:        fmt.Sprintf("test-worker-%d", i),
				Jobs:        reg,
				PollWait:    200 * time.Millisecond,
				Hooks:       h,
			})
			if err != nil {
				t.Errorf("worker %d: %v", i, err)
			}
		}(i, h)
	}
	t.Cleanup(func() {
		cancel()
		c.wg.Wait()
		pool.Close()
		srv.Close()
	})
	if err := pool.AwaitWorkers(ctx, len(hooks)); err != nil {
		t.Fatal(err)
	}
	return c
}

// remoteJob builds the wordcount job wired to the cluster's slot proxies.
func remoteJob(fs dfs.FS, pool *Pool, reducers int) mapreduce.Job {
	mapper, reducer := wordCountFuncs()
	return mapreduce.Job{
		Name: "wordcount", FS: fs,
		InputBase: "in/w", OutputBase: "out/w",
		NumReducers: reducers,
		// The coordinator still needs Mapper/Reducer for validation; the
		// remote backend never calls them — workers resolve Code instead.
		Mapper: mapper, Reducer: reducer,
		Workers: pool.Workers(),
		Code:    "wordcount",
	}
}

// postStatus drives one control endpoint directly, for protocol-level tests.
func postStatus(t *testing.T, url string, body, out any) int {
	t.Helper()
	payload, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatal(err)
		}
	}
	return resp.StatusCode
}

// fakeClock makes lease expiry a function of the test, not the scheduler.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Unix(1_000_000, 0)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// --- end-to-end: remote backend matches the in-process backend ---

// TestRemoteWordCount is the backbone equivalence check: the same job on
// the same input through two real worker processes over HTTP commits
// byte-identical output — and identical counters — to the in-process pool.
func TestRemoteWordCount(t *testing.T) {
	words := testWords(120)
	want, wantCounters := referenceOutput(t, words, 6, 4)

	fs := dfs.NewMem()
	stageWords(t, fs, "in/w", words, 6)
	c := startCluster(t, PoolOptions{FS: fs, Slots: 4}, testRegistry(t), []WorkerHooks{{}, {}})

	res, err := mapreduce.Run(remoteJob(fs, c.pool, 4))
	if err != nil {
		t.Fatal(err)
	}
	assertSameOutput(t, fs, "out/w", want)
	if got, w := res.Counters["records-in"], wantCounters["records-in"]; got != w {
		t.Errorf("records-in = %d, want %d", got, w)
	}
}

// TestRemoteExactlyOnceUnderFaults crosses the process boundary with the
// full fault battery: DFS faults on the coordinator's filesystem (which
// every worker I/O traverses via the gateway), workers killed dead on
// their first leases, and transient heartbeat partitions. The retry budget
// and lease expiry must absorb all of it and still commit byte-identical
// output.
func TestRemoteExactlyOnceUnderFaults(t *testing.T) {
	words := testWords(120)
	want, _ := referenceOutput(t, words, 6, 4)

	inner := dfs.NewMem()
	fs := dfs.NewFaultFS(inner, 42)
	stageWords(t, fs, "in/w", words, 6)
	fs.FailProbPath(dfs.OpWrite, "_attempts/", 0.05)
	fs.FailProbPath(dfs.OpRename, "_attempts/", 0.05)
	fs.FailProbPath(dfs.OpRead, "_shuffle/", 0.05)

	// First two leases anywhere kill their worker dead; next two get
	// their heartbeats dropped until the lease expires. Two extra healthy
	// workers guarantee capacity survives the carnage.
	var kills, partitions atomic.Int32
	kills.Store(2)
	partitions.Store(2)
	faulty := WorkerHooks{
		Kill: func(mapreduce.TaskSpec) bool {
			return kills.Add(-1) >= 0
		},
		DropHeartbeats: func(mapreduce.TaskSpec) bool {
			return partitions.Add(-1) >= 0
		},
	}
	hooks := []WorkerHooks{faulty, faulty, {}, {}}

	c := startCluster(t, PoolOptions{
		FS: fs, Slots: 4,
		LeaseTTL: 300 * time.Millisecond, SweepEvery: 50 * time.Millisecond,
	}, testRegistry(t), hooks)

	job := remoteJob(fs, c.pool, 4)
	job.MaxAttempts = 25
	res, err := mapreduce.Run(job)
	if err != nil {
		t.Fatalf("remote job under faults failed: %v (injected %d)", err, fs.Injected())
	}
	if fs.Injected() == 0 {
		t.Fatal("fault injection never fired; test is vacuous")
	}
	if res.Attempts <= res.MapTasks+res.ReduceTasks {
		t.Errorf("attempts = %d with kills and partitions; want retries", res.Attempts)
	}
	assertSameOutput(t, fs, "out/w", want)
}

// TestRemoteStragglerSpeculation runs one deliberately slow worker process
// against two fast ones: the coordinator's deadline speculation must race
// a sibling attempt on a fast worker, commit its result first, and turn
// the stalled worker into a zombie whose lease vanishes — across real
// HTTP, with byte-identical output.
func TestRemoteStragglerSpeculation(t *testing.T) {
	words := testWords(120)
	want, _ := referenceOutput(t, words, 6, 2)

	fs := dfs.NewMem()
	stageWords(t, fs, "in/w", words, 6)

	slow := WorkerHooks{Stall: func(mapreduce.TaskSpec) {
		time.Sleep(1200 * time.Millisecond)
	}}
	c := startCluster(t, PoolOptions{
		FS: fs, Slots: 4,
		LeaseTTL: 400 * time.Millisecond, SweepEvery: 50 * time.Millisecond,
	}, testRegistry(t), []WorkerHooks{slow, {}, {}})

	job := remoteJob(fs, c.pool, 2)
	job.StragglerAfter = 150 * time.Millisecond
	res, err := mapreduce.Run(job)
	if err != nil {
		t.Fatal(err)
	}
	if res.SpeculativeAttempts == 0 {
		t.Error("no speculative attempts launched against a 1.2s straggler")
	}
	assertSameOutput(t, fs, "out/w", want)
}

// TestRemoteFaultFSGatewayTraversal proves gateway error fidelity under
// faults: an injected coordinator-side failure surfaces to the worker as a
// PathError through two serializations, and ErrNotExist specifically
// survives the round trip (the runtime's resume probes depend on it).
func TestRemoteFaultFSGatewayTraversal(t *testing.T) {
	inner := dfs.NewMem()
	fs := dfs.NewFaultFS(inner, 7)
	pool, err := NewPool(PoolOptions{FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	srv := httptest.NewServer(pool.Handler())
	defer srv.Close()
	client := NewFSClient(srv.URL, nil)

	// Not-exist fidelity.
	if _, err := client.ReadFile("nope"); !dfs.IsNotExist(err) {
		t.Errorf("ReadFile(missing) = %v, want IsNotExist", err)
	}
	if _, err := client.Stat("nope"); !dfs.IsNotExist(err) {
		t.Errorf("Stat(missing) = %v, want IsNotExist", err)
	}

	// Scripted fault fidelity: the injected error arrives as a non-nil,
	// non-ErrNotExist PathError.
	fs.FailNext(dfs.OpRead, "boom", 1)
	if err := client.WriteFile("boom", []byte("x")); err != nil {
		t.Fatal(err)
	}
	err = nil
	if _, err = client.ReadFile("boom"); err == nil {
		t.Fatal("injected read fault did not surface through the gateway")
	}
	if dfs.IsNotExist(err) {
		t.Errorf("injected fault mapped to ErrNotExist: %v", err)
	}
	var pe *dfs.PathError
	if !asPathError(err, &pe) || pe.Path != "boom" {
		t.Errorf("fault error = %#v, want PathError for %q", err, "boom")
	}
}

func asPathError(err error, target **dfs.PathError) bool {
	pe, ok := err.(*dfs.PathError)
	if ok {
		*target = pe
	}
	return ok
}

// TestRemoteGatewayRoundTrip exercises every dfs.FS operation through the
// gateway and checks it against the backing store directly.
func TestRemoteGatewayRoundTrip(t *testing.T) {
	fs := dfs.NewMem()
	pool, err := NewPool(PoolOptions{FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	srv := httptest.NewServer(pool.Handler())
	defer srv.Close()
	client := NewFSClient(srv.URL, nil)

	payload := []byte("hello over the wire\x00with binary\xff")
	if err := client.WriteFile("dir/a", payload); err != nil {
		t.Fatal(err)
	}
	got, err := client.ReadFile("dir/a")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("round trip = %q, want %q", got, payload)
	}
	direct, err := fs.ReadFile("dir/a")
	if err != nil || !bytes.Equal(direct, payload) {
		t.Fatalf("backing store sees %q (%v), want %q", direct, err, payload)
	}
	if size, err := client.Stat("dir/a"); err != nil || size != int64(len(payload)) {
		t.Fatalf("Stat = %d, %v; want %d", size, err, len(payload))
	}
	if err := client.WriteFile("dir/b", []byte("b")); err != nil {
		t.Fatal(err)
	}
	paths, err := client.List("dir/")
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 2 || paths[0] != "dir/a" || paths[1] != "dir/b" {
		t.Fatalf("List = %v, want [dir/a dir/b]", paths)
	}
	if err := client.Rename("dir/a", "dir/c"); err != nil {
		t.Fatal(err)
	}
	if _, err := client.ReadFile("dir/a"); !dfs.IsNotExist(err) {
		t.Errorf("old path after rename: %v, want IsNotExist", err)
	}
	if err := client.Remove("dir/c"); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.ReadFile("dir/c"); !dfs.IsNotExist(err) {
		t.Errorf("backing store still has removed file: %v", err)
	}
}

// --- lease edge cases (protocol level, deterministic clock) ---

// leaseHarness is a pool with a fake clock, a registered worker, and one
// slot dispatch in flight — the setup every lease edge case starts from.
type leaseHarness struct {
	pool    *Pool
	srv     *httptest.Server
	clock   *fakeClock
	worker  string
	outcome chan error // the slot's RunTask error
}

func newLeaseHarness(t *testing.T) *leaseHarness {
	t.Helper()
	pool, err := NewPool(PoolOptions{
		FS: dfs.NewMem(), Slots: 1,
		LeaseTTL: time.Second,
		// The sweeper must not race the fake clock; edge cases drive
		// expiry through takeLease, which checks deadlines on its own —
		// or call pool.sweep() by hand when the race itself is the test.
		SweepEvery:   time.Hour,
		MaxLeaseWait: 50 * time.Millisecond,
		Metrics:      obs.NewRegistry(),
	})
	if err != nil {
		t.Fatal(err)
	}
	clock := newFakeClock()
	pool.now = clock.Now
	srv := httptest.NewServer(pool.Handler())
	t.Cleanup(func() { pool.Close(); srv.Close() })

	var reg registerResponse
	if st := postStatus(t, srv.URL+apiPrefix+"/register", registerRequest{Name: "edge"}, &reg); st != http.StatusOK {
		t.Fatalf("register = %d", st)
	}

	h := &leaseHarness{pool: pool, srv: srv, clock: clock, worker: reg.WorkerID, outcome: make(chan error, 1)}
	slot := pool.Workers()[0]
	go func() {
		_, err := slot.RunTask(context.Background(), mapreduce.TaskSpec{
			Job: "edge", Kind: mapreduce.MapTask, Index: 0, Attempt: 1,
		})
		h.outcome <- err
	}()
	return h
}

// lease long-polls until the harness's dispatch is granted.
func (h *leaseHarness) lease(t *testing.T) leaseResponse {
	t.Helper()
	for i := 0; i < 100; i++ {
		var lr leaseResponse
		st := postStatus(t, h.srv.URL+apiPrefix+"/lease", leaseRequest{WorkerID: h.worker, Wait: 50 * time.Millisecond}, &lr)
		if st == http.StatusOK {
			return lr
		}
		if st != http.StatusNoContent {
			t.Fatalf("lease = %d", st)
		}
	}
	t.Fatal("dispatch never became leasable")
	return leaseResponse{}
}

func (h *leaseHarness) heartbeat(t *testing.T, workerID, leaseID string) int {
	t.Helper()
	return postStatus(t, h.srv.URL+apiPrefix+"/heartbeat", heartbeatRequest{WorkerID: workerID, LeaseID: leaseID}, nil)
}

func (h *leaseHarness) complete(t *testing.T, workerID, leaseID string, res *mapreduce.TaskResult) int {
	t.Helper()
	return postStatus(t, h.srv.URL+apiPrefix+"/complete", completeRequest{WorkerID: workerID, LeaseID: leaseID, Result: res}, nil)
}

// TestLeaseHeartbeatAfterExpiryRejected: a heartbeat arriving after the
// lease deadline — even before any sweep — gets 410 Gone, and the dispatch
// fails so the coordinator can retry the task. Renewal must not resurrect
// an expired lease, or a partitioned worker could hold a task forever.
func TestLeaseHeartbeatAfterExpiryRejected(t *testing.T) {
	h := newLeaseHarness(t)
	lr := h.lease(t)

	// In time: renewed.
	h.clock.Advance(500 * time.Millisecond)
	if st := h.heartbeat(t, h.worker, lr.LeaseID); st != http.StatusNoContent {
		t.Fatalf("timely heartbeat = %d, want 204", st)
	}
	// Renewal moved the deadline: 800ms later it is still alive...
	h.clock.Advance(800 * time.Millisecond)
	if st := h.heartbeat(t, h.worker, lr.LeaseID); st != http.StatusNoContent {
		t.Fatalf("heartbeat after renewal = %d, want 204", st)
	}
	// ...but silence past the TTL kills it.
	h.clock.Advance(1100 * time.Millisecond)
	if st := h.heartbeat(t, h.worker, lr.LeaseID); st != http.StatusGone {
		t.Fatalf("late heartbeat = %d, want 410", st)
	}
	err := <-h.outcome
	if err == nil || !strings.Contains(err.Error(), "expired") {
		t.Fatalf("dispatch outcome = %v, want lease-expired error", err)
	}
	// The lease is gone for good: even an in-time-looking beat now 410s.
	if st := h.heartbeat(t, h.worker, lr.LeaseID); st != http.StatusGone {
		t.Fatalf("heartbeat on dead lease = %d, want 410", st)
	}
}

// TestLeaseZombieCompleteLosesToPromotedAttempt: a worker whose lease
// expired mid-task finishes anyway and reports success — after the
// coordinator already failed the dispatch and re-ran the task. The zombie
// completion gets 410 and its result is discarded; the re-run attempt's
// completion is the one the slot returns.
func TestLeaseZombieCompleteLosesToPromotedAttempt(t *testing.T) {
	h := newLeaseHarness(t)
	zombie := h.lease(t)

	// Lease expires while the worker grinds on.
	h.clock.Advance(2 * time.Second)
	if st := h.heartbeat(t, h.worker, zombie.LeaseID); st != http.StatusGone {
		t.Fatalf("post-expiry heartbeat = %d, want 410", st)
	}
	if err := <-h.outcome; err == nil {
		t.Fatal("expired dispatch did not error")
	}

	// The coordinator retries: a fresh dispatch for attempt 2.
	retry := make(chan *mapreduce.TaskResult, 1)
	slot := h.pool.Workers()[0]
	go func() {
		res, err := slot.RunTask(context.Background(), mapreduce.TaskSpec{
			Job: "edge", Kind: mapreduce.MapTask, Index: 0, Attempt: 2,
		})
		if err != nil {
			t.Errorf("retry dispatch: %v", err)
		}
		retry <- res
	}()
	fresh := h.lease(t)
	if fresh.Spec.Attempt != 2 {
		t.Fatalf("retried spec attempt = %d, want 2", fresh.Spec.Attempt)
	}

	// The zombie finally reports its attempt-1 "success": rejected, its
	// output never promoted.
	zr := &mapreduce.TaskResult{TaskID: zombie.Spec.TaskID(), Attempt: 1}
	if st := h.complete(t, h.worker, zombie.LeaseID, zr); st != http.StatusGone {
		t.Fatalf("zombie complete = %d, want 410", st)
	}

	// The live attempt commits and wins.
	fr := &mapreduce.TaskResult{TaskID: fresh.Spec.TaskID(), Attempt: 2}
	if st := h.complete(t, h.worker, fresh.LeaseID, fr); st != http.StatusNoContent {
		t.Fatalf("live complete = %d, want 204", st)
	}
	got := <-retry
	if got == nil || got.Attempt != 2 {
		t.Fatalf("promoted result = %+v, want attempt 2", got)
	}
}

// TestLeaseWorkerReRegistrationFreshIdentity: identity is minted per
// registration, never reused — a restarted worker cannot inherit its
// predecessor's leases, and a deregistered ID is dead on arrival.
func TestLeaseWorkerReRegistrationFreshIdentity(t *testing.T) {
	pool, err := NewPool(PoolOptions{FS: dfs.NewMem(), MaxLeaseWait: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	srv := httptest.NewServer(pool.Handler())
	defer srv.Close()

	var first registerResponse
	postStatus(t, srv.URL+apiPrefix+"/register", registerRequest{Name: "phoenix"}, &first)
	if pool.NumWorkers() != 1 {
		t.Fatalf("NumWorkers = %d, want 1", pool.NumWorkers())
	}
	if st := postStatus(t, srv.URL+apiPrefix+"/deregister", deregisterRequest{WorkerID: first.WorkerID}, nil); st != http.StatusNoContent {
		t.Fatalf("deregister = %d", st)
	}

	var second registerResponse
	postStatus(t, srv.URL+apiPrefix+"/register", registerRequest{Name: "phoenix"}, &second)
	if second.WorkerID == first.WorkerID {
		t.Fatalf("re-registration reused identity %q", first.WorkerID)
	}

	// The old identity is stale everywhere: leasing with it gets 410.
	if st := postStatus(t, srv.URL+apiPrefix+"/lease", leaseRequest{WorkerID: first.WorkerID, Wait: time.Millisecond}, nil); st != http.StatusGone {
		t.Fatalf("lease with stale identity = %d, want 410", st)
	}
	// The fresh identity polls fine (empty).
	if st := postStatus(t, srv.URL+apiPrefix+"/lease", leaseRequest{WorkerID: second.WorkerID, Wait: time.Millisecond}, nil); st != http.StatusNoContent {
		t.Fatalf("lease with fresh identity = %d, want 204", st)
	}
}

// TestLeasePartitionedWorkerTaskRequeued: a worker that executes but never
// heartbeats loses every lease; the retries land on a healthy worker and
// the job still commits the reference output. The coordinator never needs
// to distinguish "dead" from "partitioned" — and cannot.
func TestLeasePartitionedWorkerTaskRequeued(t *testing.T) {
	words := testWords(60)
	want, _ := referenceOutput(t, words, 3, 2)

	fs := dfs.NewMem()
	stageWords(t, fs, "in/w", words, 3)

	partitioned := WorkerHooks{
		DropHeartbeats: func(mapreduce.TaskSpec) bool { return true },
		// Stall past the TTL so the partition is always discovered.
		Stall: func(mapreduce.TaskSpec) { time.Sleep(700 * time.Millisecond) },
	}
	c := startCluster(t, PoolOptions{
		FS: fs, Slots: 2,
		LeaseTTL: 300 * time.Millisecond, SweepEvery: 50 * time.Millisecond,
	}, testRegistry(t), []WorkerHooks{partitioned, {}})

	job := remoteJob(fs, c.pool, 2)
	job.MaxAttempts = 10
	res, err := mapreduce.Run(job)
	if err != nil {
		t.Fatal(err)
	}
	if res.Attempts <= res.MapTasks+res.ReduceTasks {
		t.Error("partitioned worker cost no extra attempts; partition never bit")
	}
	assertSameOutput(t, fs, "out/w", want)
}

// TestRemoteResume: checkpoint/resume spans process boundaries — a first
// remote run writes manifests through the gateway; a second run of the
// same job skips every task.
func TestRemoteResume(t *testing.T) {
	words := testWords(60)
	want, _ := referenceOutput(t, words, 3, 2)

	fs := dfs.NewMem()
	stageWords(t, fs, "in/w", words, 3)
	c := startCluster(t, PoolOptions{FS: fs, Slots: 2}, testRegistry(t), []WorkerHooks{{}, {}})

	job := remoteJob(fs, c.pool, 2)
	job.Resume = true
	first, err := mapreduce.Run(job)
	if err != nil {
		t.Fatal(err)
	}
	if first.SkippedTasks != 0 {
		t.Fatalf("fresh run skipped %d tasks", first.SkippedTasks)
	}

	job.Workers = c.pool.Workers()
	second, err := mapreduce.Run(job)
	if err != nil {
		t.Fatal(err)
	}
	if second.SkippedTasks != first.MapTasks+first.ReduceTasks {
		t.Errorf("resumed run skipped %d tasks, want %d", second.SkippedTasks, first.MapTasks+first.ReduceTasks)
	}
	if second.Attempts != 0 {
		t.Errorf("resumed run launched %d attempts, want 0", second.Attempts)
	}
	assertSameOutput(t, fs, "out/w", want)
}

// TestRemoteWorkerGracefulDrain: canceling a worker's context mid-job lets
// it finish its leased task and deregister; the job completes on the
// remaining worker with correct output and the pool sees the departure.
func TestRemoteWorkerGracefulDrain(t *testing.T) {
	words := testWords(120)
	want, _ := referenceOutput(t, words, 6, 2)

	fs := dfs.NewMem()
	stageWords(t, fs, "in/w", words, 6)

	pool, err := NewPool(PoolOptions{FS: fs, Slots: 2})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(pool.Handler())
	t.Cleanup(func() { pool.Close(); srv.Close() })
	reg := testRegistry(t)

	keeperCtx, stopKeeper := context.WithCancel(context.Background())
	defer stopKeeper()
	drainCtx, drainNow := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	for _, w := range []struct {
		ctx  context.Context
		name string
	}{{keeperCtx, "keeper"}, {drainCtx, "drainee"}} {
		wg.Add(1)
		go func(ctx context.Context, name string) {
			defer wg.Done()
			if err := RunWorker(ctx, WorkerOptions{
				Coordinator: srv.URL, Name: name, Jobs: reg,
				PollWait: 100 * time.Millisecond,
			}); err != nil {
				t.Errorf("worker %s: %v", name, err)
			}
		}(w.ctx, w.name)
	}
	if err := pool.AwaitWorkers(context.Background(), 2); err != nil {
		t.Fatal(err)
	}

	// Drain one worker as soon as the job is underway.
	go func() {
		time.Sleep(50 * time.Millisecond)
		drainNow()
	}()
	if _, err := mapreduce.Run(remoteJob(fs, pool, 2)); err != nil {
		t.Fatal(err)
	}
	assertSameOutput(t, fs, "out/w", want)

	// The drained worker must have deregistered (poll: drain is async).
	deadline := time.Now().Add(5 * time.Second) //drybellvet:wallclock — test-only poll deadline
	for pool.NumWorkers() != 1 {
		if time.Now().After(deadline) { //drybellvet:wallclock — test-only poll deadline
			t.Fatalf("NumWorkers = %d after drain, want 1", pool.NumWorkers())
		}
		time.Sleep(10 * time.Millisecond)
	}
	stopKeeper()
	wg.Wait()
}

// TestRemoteDeploymentSkewFailsJob: a spec whose Code key no worker
// carries must fail the job with a descriptive error, not hang.
func TestRemoteDeploymentSkewFailsJob(t *testing.T) {
	words := testWords(30)
	fs := dfs.NewMem()
	stageWords(t, fs, "in/w", words, 2)
	c := startCluster(t, PoolOptions{FS: fs, Slots: 2}, testRegistry(t), []WorkerHooks{{}})

	job := remoteJob(fs, c.pool, 2)
	job.Code = "not-deployed"
	job.MaxAttempts = 2
	_, err := mapreduce.Run(job)
	if err == nil {
		t.Fatal("job with undeployed code key succeeded")
	}
	if !strings.Contains(err.Error(), "not-deployed") {
		t.Errorf("error %v does not name the missing code key", err)
	}
}
