package remote

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"time"

	"repro/internal/dfs"
	"repro/internal/mapreduce"
	"repro/internal/obs"
)

// PoolOptions configures a coordinator-side Pool.
type PoolOptions struct {
	// FS is the filesystem the pool's jobs run against. The pool serves it
	// to workers through the DFS gateway; it must be the same FS the
	// coordinator hands to mapreduce.Job. Required.
	FS dfs.FS
	// Slots is how many tasks the pool dispatches concurrently —
	// Workers() returns this many slot proxies. It is deliberately
	// decoupled from the number of registered worker processes: slots are
	// the coordinator's concurrency budget, workers are capacity that
	// drains it. Defaults to 8.
	Slots int
	// LeaseTTL is how long a dispatched task's lease lives without a
	// heartbeat before the coordinator declares the worker dead and fails
	// the dispatch (feeding the task back into the retry budget).
	// Defaults to 5s.
	LeaseTTL time.Duration
	// SweepEvery is how often the pool scans for expired leases.
	// Defaults to LeaseTTL/4.
	SweepEvery time.Duration
	// MaxLeaseWait caps how long a worker's lease request may long-poll
	// before an empty response. Defaults to 10s.
	MaxLeaseWait time.Duration
	// Metrics optionally records pool activity (registrations, leases,
	// heartbeats, expirations, zombie rejections) and, when set, wraps the
	// gateway-served FS in obs.InstrumentFS so workers' remote I/O shows
	// up in the same families as local I/O.
	Metrics *obs.Registry
}

// dispatch states. A dispatch is one slot's outstanding RunTask call; it
// moves pending → leased when a worker takes it and reaches done exactly
// once — by completion, lease expiry, or slot cancellation — whichever
// comes first. First writer wins; everyone later is a zombie.
const (
	dispatchPending = iota
	dispatchLeased
	dispatchDone
)

// dispatch carries one task from a slot proxy to a worker and its outcome
// back.
type dispatch struct {
	spec mapreduce.TaskSpec

	mu       sync.Mutex
	state    int  // guarded by mu
	canceled bool // guarded by mu; set when the slot's context dies
	outcome  chan dispatchOutcome
}

type dispatchOutcome struct {
	result *mapreduce.TaskResult
	err    error
}

// finish delivers the outcome if the dispatch is still live. It returns
// false for a dispatch that already finished — the caller lost the race.
func (d *dispatch) finish(out dispatchOutcome) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.state == dispatchDone {
		return false
	}
	d.state = dispatchDone
	d.outcome <- out
	return true
}

// cancel marks the dispatch dead from the slot side (its RunTask context
// ended). No outcome will be read; leasing skips it, a holder's completion
// gets 410.
func (d *dispatch) cancel() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.canceled = true
	d.state = dispatchDone
}

// tryLease moves pending → leased. False means the dispatch was canceled
// or already taken and must not be handed out.
func (d *dispatch) tryLease() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.canceled || d.state != dispatchPending {
		return false
	}
	d.state = dispatchLeased
	return true
}

// lease covers one leased dispatch: the worker holding it must renew
// before expires or the sweeper fails the dispatch and the lease ID goes
// stale (410 for every later heartbeat or completion).
type lease struct {
	id       string
	workerID string
	d        *dispatch
	expires  time.Time
}

// poolMetrics is the pool's instrumented surface; nil when metrics are off.
type poolMetrics struct {
	registrations *obs.Counter
	leasesGranted *obs.Counter
	heartbeats    *obs.Counter
	expirations   *obs.Counter
	zombies       *obs.Counter
	workersGauge  *obs.Gauge
}

func newPoolMetrics(reg *obs.Registry) *poolMetrics {
	if reg == nil {
		return nil
	}
	return &poolMetrics{
		registrations: reg.Counter("drybell_remote_registrations_total", "Worker registrations accepted."),
		leasesGranted: reg.Counter("drybell_remote_leases_granted_total", "Task leases handed to workers."),
		heartbeats:    reg.Counter("drybell_remote_heartbeats_total", "Lease renewals accepted."),
		expirations:   reg.Counter("drybell_remote_lease_expirations_total", "Leases expired by the sweeper or rejected past deadline."),
		zombies:       reg.Counter("drybell_remote_zombie_rejections_total", "Heartbeats or completions rejected with 410 Gone."),
		workersGauge:  reg.Gauge("drybell_remote_workers", "Currently registered worker processes."),
	}
}

// Pool is the coordinator side of the remote backend. It serves the
// control plane (registration, leasing, heartbeats, completion) and the
// data plane (the DFS gateway) on one Handler, and exposes the execution
// seam as Workers(): slot proxies implementing mapreduce.Worker whose
// RunTask blocks until some registered worker process executes the task —
// or until its lease expires, which surfaces as an attempt failure the
// coordinator's retry and straggler machinery already knows how to absorb.
type Pool struct {
	opts    PoolOptions
	fs      dfs.FS
	mux     *http.ServeMux
	pending chan *dispatch
	metrics *poolMetrics

	// now is the pool's clock, swappable in tests so lease expiry is
	// deterministic rather than timing-dependent.
	now func() time.Time

	mu         sync.Mutex
	cond       *sync.Cond        // broadcast on worker-set change and close
	workers    map[string]string // guarded by mu: worker ID → advisory name
	leases     map[string]*lease // guarded by mu
	nextWorker int               // guarded by mu
	nextLease  int               // guarded by mu
	closed     bool              // guarded by mu

	sweepStop chan struct{}
	sweepDone chan struct{}
}

// NewPool builds a Pool and starts its lease sweeper. Call Close when done.
func NewPool(opts PoolOptions) (*Pool, error) {
	if opts.FS == nil {
		return nil, fmt.Errorf("remote: PoolOptions.FS is required")
	}
	if opts.Slots <= 0 {
		opts.Slots = 8
	}
	if opts.LeaseTTL <= 0 {
		opts.LeaseTTL = 5 * time.Second
	}
	if opts.SweepEvery <= 0 {
		opts.SweepEvery = opts.LeaseTTL / 4
	}
	if opts.MaxLeaseWait <= 0 {
		opts.MaxLeaseWait = 10 * time.Second
	}
	fs := opts.FS
	if opts.Metrics != nil {
		fs = obs.InstrumentFS(fs, opts.Metrics)
	}
	p := &Pool{
		opts:    opts,
		fs:      fs,
		pending: make(chan *dispatch, opts.Slots),
		metrics: newPoolMetrics(opts.Metrics),
		now:     time.Now, //drybellvet:wallclock — lease TTLs are operational timeouts, not data-plane values
		workers: make(map[string]string),
		leases:  make(map[string]*lease),

		sweepStop: make(chan struct{}),
		sweepDone: make(chan struct{}),
	}
	p.cond = sync.NewCond(&p.mu)
	p.mux = http.NewServeMux()
	p.mux.HandleFunc("POST "+apiPrefix+"/register", p.handleRegister)
	p.mux.HandleFunc("POST "+apiPrefix+"/deregister", p.handleDeregister)
	p.mux.HandleFunc("POST "+apiPrefix+"/lease", p.handleLease)
	p.mux.HandleFunc("POST "+apiPrefix+"/heartbeat", p.handleHeartbeat)
	p.mux.HandleFunc("POST "+apiPrefix+"/complete", p.handleComplete)
	(&fsGateway{fs: p.fs}).mount(p.mux)
	go p.sweeper()
	return p, nil
}

// Handler returns the pool's HTTP surface: control plane and DFS gateway.
// Serve it wherever workers can reach the coordinator.
func (p *Pool) Handler() http.Handler { return p.mux }

// Workers returns the pool's slot proxies, ready for mapreduce.Job.Workers.
// Each call returns fresh proxies; all share the pool's dispatch queue.
func (p *Pool) Workers() []mapreduce.Worker {
	ws := make([]mapreduce.Worker, p.opts.Slots)
	for i := range ws {
		ws[i] = &slotWorker{p: p}
	}
	return ws
}

// NumWorkers reports how many worker processes are currently registered.
func (p *Pool) NumWorkers() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.workers)
}

// AwaitWorkers blocks until at least n worker processes are registered,
// the context ends, or the pool closes.
func (p *Pool) AwaitWorkers(ctx context.Context, n int) error {
	stop := context.AfterFunc(ctx, func() {
		p.mu.Lock()
		p.cond.Broadcast()
		p.mu.Unlock()
	})
	defer stop()
	p.mu.Lock()
	defer p.mu.Unlock()
	for len(p.workers) < n {
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("remote: waiting for %d workers (have %d): %w", n, len(p.workers), err)
		}
		if p.closed {
			return fmt.Errorf("remote: pool closed while waiting for %d workers (have %d)", n, len(p.workers))
		}
		p.cond.Wait()
	}
	return nil
}

// Close stops the sweeper and fails every outstanding lease. Safe to call
// once; the pool is unusable afterwards.
func (p *Pool) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	expired := make([]*lease, 0, len(p.leases))
	for id, l := range p.leases { //drybellvet:ordered — draining; order immaterial
		expired = append(expired, l)
		delete(p.leases, id)
	}
	p.cond.Broadcast()
	p.mu.Unlock()
	for _, l := range expired {
		l.d.finish(dispatchOutcome{err: fmt.Errorf("remote: pool closed with task %s leased", l.d.spec.TaskID())})
	}
	close(p.sweepStop)
	<-p.sweepDone
}

// sweeper periodically expires leases whose holders stopped heartbeating.
func (p *Pool) sweeper() {
	defer close(p.sweepDone)
	t := time.NewTicker(p.opts.SweepEvery)
	defer t.Stop()
	for {
		select {
		case <-p.sweepStop:
			return
		case <-t.C:
			p.sweep()
		}
	}
}

// sweep fails every expired lease: the dispatch errors (charged against the
// task's retry budget exactly like an in-process worker crash) and the
// lease ID goes stale, so the holder — dead, partitioned, or merely late —
// is a zombie from here on.
func (p *Pool) sweep() {
	now := p.now()
	p.mu.Lock()
	var dead []*lease
	for id, l := range p.leases { //drybellvet:ordered — expiry scan; order immaterial
		if now.After(l.expires) {
			dead = append(dead, l)
			delete(p.leases, id)
		}
	}
	p.mu.Unlock()
	for _, l := range dead {
		if p.metrics != nil {
			p.metrics.expirations.Inc()
		}
		l.d.finish(dispatchOutcome{err: fmt.Errorf(
			"remote: lease %s on task %s attempt %d expired (worker %s dead or partitioned)",
			l.id, l.d.spec.TaskID(), l.d.spec.Attempt, l.workerID)})
	}
}

// slotWorker is one dispatch slot: a mapreduce.Worker whose RunTask
// enqueues the spec for some remote worker process and blocks for the
// outcome. The coordinator drives it exactly like an in-process worker —
// one goroutine, one task at a time — so every upstream guarantee
// (retries, speculation, first-commit-wins) holds unchanged.
type slotWorker struct {
	p *Pool
}

// RunTask implements mapreduce.Worker.
func (s *slotWorker) RunTask(ctx context.Context, spec mapreduce.TaskSpec) (*mapreduce.TaskResult, error) {
	d := &dispatch{spec: spec, outcome: make(chan dispatchOutcome, 1)}
	select {
	case s.p.pending <- d:
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	select {
	case out := <-d.outcome:
		return out.result, out.err
	case <-ctx.Done():
		// The slot's attempt is over (job canceled, or a rival attempt
		// already committed). Kill the dispatch so a worker still holding
		// it becomes a zombie: leasing skips it, completion gets 410, and
		// its attempt-scoped scratch is cleaned up with the job.
		d.cancel()
		s.p.dropLeaseFor(d)
		return nil, ctx.Err()
	}
}

// dropLeaseFor removes the lease covering d, if any, so a canceled
// dispatch cannot be completed by its holder.
func (p *Pool) dropLeaseFor(d *dispatch) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for id, l := range p.leases { //drybellvet:ordered — single-match scan
		if l.d == d {
			delete(p.leases, id)
			return
		}
	}
}

// --- control-plane handlers ---

func (p *Pool) handleRegister(w http.ResponseWriter, r *http.Request) {
	var req registerRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		http.Error(w, "remote: pool closed", http.StatusServiceUnavailable)
		return
	}
	p.nextWorker++
	id := fmt.Sprintf("w%04d", p.nextWorker)
	p.workers[id] = req.Name
	n := len(p.workers)
	p.cond.Broadcast()
	p.mu.Unlock()
	if p.metrics != nil {
		p.metrics.registrations.Inc()
		p.metrics.workersGauge.Set(float64(n))
	}
	writeJSON(w, registerResponse{WorkerID: id})
}

func (p *Pool) handleDeregister(w http.ResponseWriter, r *http.Request) {
	var req deregisterRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	p.mu.Lock()
	delete(p.workers, req.WorkerID)
	n := len(p.workers)
	p.cond.Broadcast()
	p.mu.Unlock()
	if p.metrics != nil {
		p.metrics.workersGauge.Set(float64(n))
	}
	w.WriteHeader(http.StatusNoContent)
}

// handleLease long-polls for a pending dispatch. An unregistered worker ID
// gets 410 Gone — its identity is stale (never registered, deregistered, or
// from before a coordinator restart) and the worker must re-register for a
// fresh one. An empty poll returns 204.
func (p *Pool) handleLease(w http.ResponseWriter, r *http.Request) {
	var req leaseRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	p.mu.Lock()
	_, registered := p.workers[req.WorkerID]
	closed := p.closed
	p.mu.Unlock()
	if closed {
		http.Error(w, "remote: pool closed", http.StatusServiceUnavailable)
		return
	}
	if !registered {
		http.Error(w, "remote: unknown worker "+req.WorkerID, http.StatusGone)
		return
	}
	wait := req.Wait
	if wait <= 0 || wait > p.opts.MaxLeaseWait {
		wait = p.opts.MaxLeaseWait
	}
	deadline := time.NewTimer(wait)
	defer deadline.Stop()
	for {
		select {
		case d := <-p.pending:
			if !d.tryLease() {
				continue // canceled while queued; skip, keep polling
			}
			resp, ok := p.grantLease(req.WorkerID, d)
			if !ok {
				// Pool closed between the poll and the grant; the
				// dispatch was failed by Close.
				http.Error(w, "remote: pool closed", http.StatusServiceUnavailable)
				return
			}
			writeJSON(w, resp)
			return
		case <-deadline.C:
			w.WriteHeader(http.StatusNoContent)
			return
		case <-r.Context().Done():
			// Worker gave up (or died) mid-poll. The dispatch, if we had
			// taken one, was never leased — nothing to undo.
			return
		}
	}
}

// grantLease mints a lease over a freshly taken dispatch.
func (p *Pool) grantLease(workerID string, d *dispatch) (leaseResponse, bool) {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		d.finish(dispatchOutcome{err: fmt.Errorf("remote: pool closed with task %s leased", d.spec.TaskID())})
		return leaseResponse{}, false
	}
	p.nextLease++
	l := &lease{
		id:       fmt.Sprintf("l%06d", p.nextLease),
		workerID: workerID,
		d:        d,
		expires:  p.now().Add(p.opts.LeaseTTL),
	}
	p.leases[l.id] = l
	p.mu.Unlock()
	if p.metrics != nil {
		p.metrics.leasesGranted.Inc()
	}
	return leaseResponse{LeaseID: l.id, TTL: p.opts.LeaseTTL, Spec: d.spec}, true
}

// takeLease looks up a live lease for (workerID, leaseID), expiring it on
// the spot if its deadline already passed. It returns the lease and true
// only when the caller may act on it.
func (p *Pool) takeLease(workerID, leaseID string, remove bool) (*lease, bool) {
	now := p.now()
	p.mu.Lock()
	l, ok := p.leases[leaseID]
	if !ok || l.workerID != workerID {
		p.mu.Unlock()
		return nil, false
	}
	if now.After(l.expires) {
		// Too late: the holder is a zombie even though the sweeper hasn't
		// run yet. Expire the lease now so the answer doesn't depend on
		// sweep timing.
		delete(p.leases, leaseID)
		p.mu.Unlock()
		if p.metrics != nil {
			p.metrics.expirations.Inc()
		}
		l.d.finish(dispatchOutcome{err: fmt.Errorf(
			"remote: lease %s on task %s attempt %d expired (worker %s dead or partitioned)",
			l.id, l.d.spec.TaskID(), l.d.spec.Attempt, l.workerID)})
		return nil, false
	}
	if remove {
		delete(p.leases, leaseID)
	}
	p.mu.Unlock()
	return l, true
}

func (p *Pool) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	var req heartbeatRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	l, ok := p.takeLease(req.WorkerID, req.LeaseID, false)
	if !ok {
		if p.metrics != nil {
			p.metrics.zombies.Inc()
		}
		http.Error(w, "remote: lease "+req.LeaseID+" gone", http.StatusGone)
		return
	}
	p.mu.Lock()
	// Re-check under the lock: the sweeper may have expired the lease
	// between takeLease and here.
	if cur, live := p.leases[req.LeaseID]; live && cur == l {
		l.expires = p.now().Add(p.opts.LeaseTTL)
		p.mu.Unlock()
		if p.metrics != nil {
			p.metrics.heartbeats.Inc()
		}
		w.WriteHeader(http.StatusNoContent)
		return
	}
	p.mu.Unlock()
	if p.metrics != nil {
		p.metrics.zombies.Inc()
	}
	http.Error(w, "remote: lease "+req.LeaseID+" gone", http.StatusGone)
}

// handleComplete resolves a lease with the worker's result or error. The
// lease must still be live: a worker whose lease expired — even one that
// finished the work — gets 410, because the coordinator already charged
// the attempt as failed and may have re-executed it elsewhere. The
// zombie's attempt-scoped output simply never gets promoted; that is the
// first-commit-wins discipline crossing the process boundary.
func (p *Pool) handleComplete(w http.ResponseWriter, r *http.Request) {
	var req completeRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	l, ok := p.takeLease(req.WorkerID, req.LeaseID, true)
	if !ok {
		if p.metrics != nil {
			p.metrics.zombies.Inc()
		}
		http.Error(w, "remote: lease "+req.LeaseID+" gone", http.StatusGone)
		return
	}
	out := dispatchOutcome{result: req.Result}
	if req.Error != "" {
		out = dispatchOutcome{err: fmt.Errorf("remote: worker %s: %s", req.WorkerID, req.Error)}
	} else if req.Result == nil {
		out = dispatchOutcome{err: fmt.Errorf("remote: worker %s returned neither result nor error", req.WorkerID)}
	}
	l.d.finish(out)
	w.WriteHeader(http.StatusNoContent)
}
