package mapreduce

import (
	"bytes"
	"errors"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/dfs"
)

func stageWords(t *testing.T, fs dfs.FS, base string, words []string, shards int) {
	t.Helper()
	recs := make([][]byte, len(words))
	for i, w := range words {
		recs[i] = []byte(w)
	}
	if err := WriteInput(fs, base, recs, shards); err != nil {
		t.Fatal(err)
	}
}

// wordCount is the canonical test job.
func wordCountJob(fs dfs.FS, in, out string, reducers, parallelism int) Job {
	return Job{
		Name:      "wordcount",
		FS:        fs,
		InputBase: in, OutputBase: out,
		NumReducers: reducers,
		Parallelism: parallelism,
		Mapper: MapFunc(func(ctx *TaskContext, rec []byte, emit Emitter) error {
			ctx.Counters.Inc("records-in", 1)
			emit(string(rec), []byte{1})
			return nil
		}),
		Reducer: ReduceFunc(func(ctx *TaskContext, key string, values [][]byte, emit Emitter) error {
			emit(key, []byte(fmt.Sprintf("%s=%d", key, len(values))))
			return nil
		}),
	}
}

func runWordCount(t *testing.T, words []string, shards, reducers, parallelism int) map[string]int {
	t.Helper()
	fs := dfs.NewMem()
	stageWords(t, fs, "in/words", words, shards)
	res, err := Run(wordCountJob(fs, "in/words", "out/counts", reducers, parallelism))
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Counters["records-in"]; got != int64(len(words)) {
		t.Errorf("records-in counter = %d, want %d", got, len(words))
	}
	recs, err := ReadOutput(fs, "out/counts")
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	for _, r := range recs {
		parts := strings.SplitN(string(r), "=", 2)
		n, err := strconv.Atoi(parts[1])
		if err != nil {
			t.Fatal(err)
		}
		counts[parts[0]] = n
	}
	return counts
}

func TestWordCountCorrect(t *testing.T) {
	words := []string{"a", "b", "a", "c", "a", "b"}
	counts := runWordCount(t, words, 3, 2, 4)
	want := map[string]int{"a": 3, "b": 2, "c": 1}
	for k, v := range want {
		if counts[k] != v {
			t.Errorf("count[%q] = %d, want %d", k, counts[k], v)
		}
	}
}

func TestDeterministicAcrossParallelismAndShards(t *testing.T) {
	var words []string
	for i := 0; i < 200; i++ {
		words = append(words, fmt.Sprintf("w%d", i%17))
	}
	base := runWordCount(t, words, 1, 1, 1)
	for _, cfg := range []struct{ shards, reducers, par int }{
		{4, 3, 8}, {7, 5, 2}, {10, 1, 16}, {3, 7, 3},
	} {
		got := runWordCount(t, words, cfg.shards, cfg.reducers, cfg.par)
		if len(got) != len(base) {
			t.Fatalf("cfg %+v: %d keys, want %d", cfg, len(got), len(base))
		}
		for k, v := range base {
			if got[k] != v {
				t.Errorf("cfg %+v: count[%q] = %d, want %d", cfg, k, got[k], v)
			}
		}
	}
}

// Property: word counts equal a sequential reference for random inputs.
func TestWordCountMatchesReferenceProperty(t *testing.T) {
	f := func(ws []uint8, shards, reducers uint8) bool {
		if len(ws) == 0 {
			return true
		}
		words := make([]string, len(ws))
		ref := map[string]int{}
		for i, w := range ws {
			words[i] = fmt.Sprintf("k%d", w%11)
			ref[words[i]]++
		}
		fs := dfs.NewMem()
		recs := make([][]byte, len(words))
		for i, w := range words {
			recs[i] = []byte(w)
		}
		if err := WriteInput(fs, "in/w", recs, int(shards%5)+1); err != nil {
			return false
		}
		res, err := Run(wordCountJob(fs, "in/w", "out/c", int(reducers%4)+1, 4))
		if err != nil || res == nil {
			return false
		}
		out, err := ReadOutput(fs, "out/c")
		if err != nil {
			return false
		}
		got := map[string]int{}
		for _, r := range out {
			parts := strings.SplitN(string(r), "=", 2)
			got[parts[0]], _ = strconv.Atoi(parts[1])
		}
		if len(got) != len(ref) {
			return false
		}
		for k, v := range ref {
			if got[k] != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestMapOnlyPreservesOrder(t *testing.T) {
	fs := dfs.NewMem()
	var recs [][]byte
	for i := 0; i < 50; i++ {
		recs = append(recs, []byte(fmt.Sprintf("r%03d", i)))
	}
	if err := WriteInput(fs, "in/r", recs, 5); err != nil {
		t.Fatal(err)
	}
	job := Job{
		Name: "upper", FS: fs, InputBase: "in/r", OutputBase: "out/r",
		Parallelism: 8,
		Mapper: MapFunc(func(_ *TaskContext, rec []byte, emit Emitter) error {
			emit("", bytes.ToUpper(rec))
			return nil
		}),
	}
	res, err := Run(job)
	if err != nil {
		t.Fatal(err)
	}
	if res.MapTasks != 5 || res.ReduceTasks != 0 {
		t.Errorf("tasks = %d map, %d reduce", res.MapTasks, res.ReduceTasks)
	}
	out, err := ReadOutput(fs, "out/r")
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 50 {
		t.Fatalf("output records = %d, want 50", len(out))
	}
	// Map-only keeps shard alignment: output shard i mirrors input shard i.
	// Round-robin staging puts record j in shard j%5, so reading shards in
	// order yields records grouped by residue class, each in input order.
	idx := 0
	for s := 0; s < 5; s++ {
		for j := s; j < 50; j += 5 {
			want := strings.ToUpper(fmt.Sprintf("r%03d", j))
			if string(out[idx]) != want {
				t.Fatalf("out[%d] = %q, want %q", idx, out[idx], want)
			}
			idx++
		}
	}
}

func TestSetupTeardownPerTask(t *testing.T) {
	fs := dfs.NewMem()
	stageWords(t, fs, "in/w", []string{"a", "b", "c", "d"}, 4)
	var mu sync.Mutex
	setups, teardowns := 0, 0
	m := &hookedMapper{
		setup: func(ctx *TaskContext) error {
			mu.Lock()
			setups++
			mu.Unlock()
			ctx.SetState("server-handle")
			return nil
		},
		mapFn: func(ctx *TaskContext, rec []byte, emit Emitter) error {
			if ctx.State() != "server-handle" {
				t.Error("state not visible in Map")
			}
			emit("", rec)
			return nil
		},
		teardown: func(*TaskContext) error {
			mu.Lock()
			teardowns++
			mu.Unlock()
			return nil
		},
	}
	if _, err := Run(Job{Name: "hooked", FS: fs, InputBase: "in/w", OutputBase: "out/w", Mapper: m, Parallelism: 2}); err != nil {
		t.Fatal(err)
	}
	if setups != 4 || teardowns != 4 {
		t.Errorf("setups=%d teardowns=%d, want 4/4 (one per task)", setups, teardowns)
	}
}

type hookedMapper struct {
	setup    func(*TaskContext) error
	mapFn    func(*TaskContext, []byte, Emitter) error
	teardown func(*TaskContext) error
}

func (h *hookedMapper) Setup(c *TaskContext) error { return h.setup(c) }
func (h *hookedMapper) Map(c *TaskContext, r []byte, e Emitter) error {
	return h.mapFn(c, r, e)
}
func (h *hookedMapper) Teardown(c *TaskContext) error { return h.teardown(c) }

func TestFailureInjectionRetriesAndSucceeds(t *testing.T) {
	fs := dfs.NewMem()
	stageWords(t, fs, "in/w", []string{"a", "a", "b"}, 2)
	var mu sync.Mutex
	failed := map[string]int{}
	job := wordCountJob(fs, "in/w", "out/w", 2, 4)
	job.MaxAttempts = 3
	job.FailureHook = func(taskID string, attempt int) error {
		mu.Lock()
		defer mu.Unlock()
		if attempt < 2 { // every task's first attempt crashes
			failed[taskID]++
			return errors.New("injected worker crash")
		}
		return nil
	}
	res, err := Run(job)
	if err != nil {
		t.Fatal(err)
	}
	if len(failed) != res.MapTasks+res.ReduceTasks {
		t.Errorf("failed tasks = %d, want %d", len(failed), res.MapTasks+res.ReduceTasks)
	}
	// Exactly-once output despite retries.
	out, err := ReadOutput(fs, "out/w")
	if err != nil {
		t.Fatal(err)
	}
	joined := strings.Join(recordsToStrings(out), ",")
	if !strings.Contains(joined, "a=2") || !strings.Contains(joined, "b=1") {
		t.Errorf("output after retries = %v", joined)
	}
	// Only the winning attempt's counters are merged, and records must not
	// be duplicated.
	if len(out) != 2 {
		t.Errorf("output records = %d, want 2", len(out))
	}
}

func TestFailureExhaustsAttempts(t *testing.T) {
	fs := dfs.NewMem()
	stageWords(t, fs, "in/w", []string{"a"}, 1)
	job := wordCountJob(fs, "in/w", "out/w", 1, 1)
	job.MaxAttempts = 2
	job.FailureHook = func(taskID string, attempt int) error {
		return errors.New("permanent failure")
	}
	if _, err := Run(job); err == nil {
		t.Fatal("job with permanent failures should fail")
	}
	// No partial output may be committed.
	if _, err := dfs.ListShards(fs, "out/w"); err == nil {
		t.Error("failed job committed output shards")
	}
}

func TestMapErrorPropagates(t *testing.T) {
	fs := dfs.NewMem()
	stageWords(t, fs, "in/w", []string{"boom"}, 1)
	job := Job{
		Name: "failing", FS: fs, InputBase: "in/w", OutputBase: "out/w",
		MaxAttempts: 1,
		Mapper: MapFunc(func(_ *TaskContext, rec []byte, _ Emitter) error {
			return fmt.Errorf("bad record %q", rec)
		}),
	}
	if _, err := Run(job); err == nil || !strings.Contains(err.Error(), "bad record") {
		t.Errorf("err = %v", err)
	}
}

func TestValidationErrors(t *testing.T) {
	fs := dfs.NewMem()
	if _, err := Run(Job{Name: "x", FS: fs}); err == nil {
		t.Error("job without mapper accepted")
	}
	m := MapFunc(func(*TaskContext, []byte, Emitter) error { return nil })
	if _, err := Run(Job{Name: "x", FS: fs, Mapper: m, NumReducers: 2}); err == nil {
		t.Error("reducers without Reducer accepted")
	}
	if _, err := Run(Job{Name: "x", Mapper: m}); err == nil {
		t.Error("job without FS accepted")
	}
	if _, err := Run(Job{Name: "x", FS: fs, Mapper: m, InputBase: "missing"}); err == nil {
		t.Error("job with missing input accepted")
	}
}

func TestCountersConcurrent(t *testing.T) {
	c := NewCounterSet()
	var wg sync.WaitGroup
	for i := 0; i < 20; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				c.Inc("n", 1)
			}
		}()
	}
	wg.Wait()
	if c.Get("n") != 2000 {
		t.Errorf("counter = %d, want 2000", c.Get("n"))
	}
	snap := c.Snapshot()
	c.Inc("n", 1)
	if snap["n"] != 2000 {
		t.Error("Snapshot aliases live counters")
	}
}

func TestCountRecords(t *testing.T) {
	fs := dfs.NewMem()
	stageWords(t, fs, "in/w", []string{"a", "b", "c", "d", "e"}, 2)
	n, err := CountRecords(fs, "in/w")
	if err != nil || n != 5 {
		t.Errorf("CountRecords = %d, %v", n, err)
	}
}

func TestReadOutputCorruptShard(t *testing.T) {
	fs := dfs.NewMem()
	stageWords(t, fs, "in/w", []string{"aaaa", "bbbb"}, 1)
	if err := fs.Corrupt(dfs.ShardPath("in/w", 0, 1), 14); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadOutput(fs, "in/w"); err == nil {
		t.Error("corrupt shard read without error")
	}
}

func recordsToStrings(recs [][]byte) []string {
	out := make([]string, len(recs))
	for i, r := range recs {
		out[i] = string(r)
	}
	return out
}

// batchUpper is a BatchMapper: one MapBatch call per task's records.
type batchUpper struct {
	mu        sync.Mutex
	batchSize []int
}

func (m *batchUpper) Setup(*TaskContext) error    { return nil }
func (m *batchUpper) Teardown(*TaskContext) error { return nil }
func (m *batchUpper) Map(*TaskContext, []byte, Emitter) error {
	return errors.New("Map must not be called when MapBatch is implemented")
}
func (m *batchUpper) MapBatch(_ *TaskContext, records [][]byte, emit Emitter) error {
	m.mu.Lock()
	m.batchSize = append(m.batchSize, len(records))
	m.mu.Unlock()
	for _, rec := range records {
		emit("", []byte(strings.ToUpper(string(rec))))
	}
	return nil
}

// TestBatchMapperGetsWholeShards: the engine hands each task's records to
// MapBatch in one call, output equals the record-at-a-time job.
func TestBatchMapperGetsWholeShards(t *testing.T) {
	fs := dfs.NewMem()
	words := []string{"alpha", "beta", "gamma", "delta", "epsilon", "zeta", "eta"}
	stageWords(t, fs, "in/w", words, 3)
	m := &batchUpper{}
	res, err := Run(Job{
		Name: "batch-upper", FS: fs,
		InputBase: "in/w", OutputBase: "out/w",
		Mapper: m, Parallelism: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.OutputShards) != 3 {
		t.Fatalf("output shards = %d", len(res.OutputShards))
	}
	if len(m.batchSize) != 3 {
		t.Fatalf("MapBatch calls = %d, want one per shard", len(m.batchSize))
	}
	total := 0
	for _, n := range m.batchSize {
		total += n
	}
	if total != len(words) {
		t.Fatalf("batched records = %d, want %d", total, len(words))
	}
	out, err := ReadOutput(fs, "out/w")
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]bool{}
	for _, rec := range out {
		got[string(rec)] = true
	}
	for _, w := range words {
		if !got[strings.ToUpper(w)] {
			t.Errorf("missing output for %q", w)
		}
	}
}

func TestCollectOutputReturnsWithoutCommitting(t *testing.T) {
	fs := dfs.NewMem()
	var recs [][]byte
	for i := 0; i < 30; i++ {
		recs = append(recs, []byte(fmt.Sprintf("r%03d", i)))
	}
	if err := WriteInput(fs, "in/c", recs, 4); err != nil {
		t.Fatal(err)
	}
	res, err := Run(Job{
		Name: "collect", FS: fs, InputBase: "in/c", CollectOutput: true,
		Parallelism: 8,
		Mapper: MapFunc(func(_ *TaskContext, rec []byte, emit Emitter) error {
			emit("", bytes.ToUpper(rec))
			return nil
		}),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.OutputShards) != 0 {
		t.Errorf("collect mode committed shards: %v", res.OutputShards)
	}
	if len(res.MapOutputs) != 4 {
		t.Fatalf("MapOutputs for %d shards, want 4", len(res.MapOutputs))
	}
	// Per-shard outputs line up with the round-robin staging layout.
	for s, shard := range res.MapOutputs {
		want := 0
		for j := s; j < 30; j += 4 {
			if got := string(shard[want]); got != strings.ToUpper(fmt.Sprintf("r%03d", j)) {
				t.Fatalf("shard %d output %d = %q", s, want, got)
			}
			want++
		}
		if len(shard) != want {
			t.Fatalf("shard %d has %d outputs, want %d", s, len(shard), want)
		}
	}
	// Nothing new appeared on the filesystem.
	paths, err := fs.List("")
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range paths {
		if !strings.HasPrefix(p, "in/c") {
			t.Errorf("collect mode wrote %s", p)
		}
	}
	// Collect with reducers is rejected up front.
	if _, err := Run(Job{
		Name: "bad", FS: fs, InputBase: "in/c", CollectOutput: true, NumReducers: 2,
		Mapper:  MapFunc(func(_ *TaskContext, _ []byte, _ Emitter) error { return nil }),
		Reducer: ReduceFunc(func(_ *TaskContext, _ string, _ [][]byte, _ Emitter) error { return nil }),
	}); err == nil {
		t.Error("CollectOutput with reducers accepted")
	}
}
