package mapreduce

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/dfs"
)

// eachBackend runs a runtime test against both DFS stores, proving the
// coordinator's manifests and fault behavior have disk/memory parity.
func eachBackend(t *testing.T, fn func(t *testing.T, fs dfs.FS)) {
	t.Run("mem", func(t *testing.T) { fn(t, dfs.NewMem()) })
	t.Run("disk", func(t *testing.T) {
		d, err := dfs.NewDisk(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		fn(t, d)
	})
}

// faultyWords is the corpus for the fault suite.
func faultyWords() []string {
	var words []string
	for i := 0; i < 120; i++ {
		words = append(words, fmt.Sprintf("w%d", i%13))
	}
	return words
}

// TestExactlyOnceUnderFaults is the runtime's core guarantee: a reducing
// job driven through the coordinator/worker pool with injected worker
// kills, attempt-write faults, commit-rename faults, and shuffle-read
// faults produces byte-identical output — and identical counters — to a
// clean run.
func TestExactlyOnceUnderFaults(t *testing.T) {
	words := faultyWords()

	clean := dfs.NewMem()
	stageWords(t, clean, "in/w", words, 6)
	cleanRes, err := Run(wordCountJob(clean, "in/w", "out/w", 4, 4))
	if err != nil {
		t.Fatal(err)
	}
	want, err := ReadOutput(clean, "out/w")
	if err != nil {
		t.Fatal(err)
	}

	eachBackend(t, func(t *testing.T, inner dfs.FS) {
		fs := dfs.NewFaultFS(inner, 42)
		stageWords(t, fs, "in/w", words, 6)
		// Faults aim at the runtime's own files — attempt output, commit
		// renames, shuffle reads — all of which sit inside the retry loop.
		// A map attempt commits one write+rename per reduce partition, so
		// per-op probabilities compound; keep them low enough that the
		// retry budget wins with overwhelming probability while still
		// firing dozens of faults per run.
		fs.FailProbPath(dfs.OpWrite, "_attempts/", 0.08)
		fs.FailProbPath(dfs.OpRename, "_attempts/", 0.08)
		fs.FailProbPath(dfs.OpRead, "_shuffle/", 0.08)
		var mu sync.Mutex
		killed := map[string]bool{}
		job := wordCountJob(fs, "in/w", "out/w", 4, 4)
		job.MaxAttempts = 25
		job.FailureHook = func(taskID string, attempt int) error {
			// Kill every task's first attempt: a worker crash at startup.
			mu.Lock()
			defer mu.Unlock()
			if !killed[taskID] {
				killed[taskID] = true
				return errors.New("injected worker kill")
			}
			return nil
		}
		res, err := Run(job)
		if err != nil {
			t.Fatalf("job under faults failed: %v (injected %d)", err, fs.Injected())
		}
		if fs.Injected() == 0 {
			t.Fatal("fault injection never fired; test is vacuous")
		}
		if res.Attempts <= res.MapTasks+res.ReduceTasks {
			t.Errorf("attempts = %d with kills on every task; want retries", res.Attempts)
		}
		got, err := ReadOutput(fs, "out/w")
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("output records = %d, want %d", len(got), len(want))
		}
		for i := range want {
			if !bytes.Equal(got[i], want[i]) {
				t.Fatalf("output[%d] = %q, want %q", i, got[i], want[i])
			}
		}
		// Winner-only counter merging keeps counters deterministic too.
		if got, want := res.Counters["records-in"], cleanRes.Counters["records-in"]; got != want {
			t.Errorf("records-in under faults = %d, want %d", got, want)
		}
	})
}

// slowFirstMapper stalls the first attempt of map-00000 until its attempt
// context is canceled (or a long timeout), simulating a straggling node.
type slowFirstMapper struct{}

func (slowFirstMapper) Setup(*TaskContext) error    { return nil }
func (slowFirstMapper) Teardown(*TaskContext) error { return nil }
func (slowFirstMapper) Map(ctx *TaskContext, rec []byte, emit Emitter) error {
	if ctx.TaskID == "map-00000" && ctx.Attempt == 1 {
		select {
		case <-ctx.Ctx.Done():
			return ctx.Ctx.Err()
		case <-time.After(10 * time.Second):
		}
	}
	emit("", bytes.ToUpper(rec))
	return nil
}

// TestStragglerSpeculativeExecution: a task stuck past the deadline gets a
// speculative sibling, the sibling's commit wins, the straggler is canceled,
// and the output is exactly the clean run's.
func TestStragglerSpeculativeExecution(t *testing.T) {
	fs := dfs.NewMem()
	var recs [][]byte
	for i := 0; i < 20; i++ {
		recs = append(recs, []byte(fmt.Sprintf("r%03d", i)))
	}
	if err := WriteInput(fs, "in/r", recs, 4); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	res, err := Run(Job{
		Name: "straggle", FS: fs, InputBase: "in/r", OutputBase: "out/r",
		Mapper:         slowFirstMapper{},
		Parallelism:    4,
		StragglerAfter: 30 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("speculation did not rescue the straggler in time")
	}
	if res.SpeculativeAttempts == 0 {
		t.Error("no speculative attempt launched for the straggler")
	}
	out, err := ReadOutput(fs, "out/r")
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 20 {
		t.Fatalf("output records = %d, want 20 (no loss, no duplication)", len(out))
	}
	seen := map[string]bool{}
	for _, rec := range out {
		if seen[string(rec)] {
			t.Fatalf("duplicated output record %q", rec)
		}
		seen[string(rec)] = true
	}
}

// TestResumeSkipsCommittedTasks: a run that dies mid-stage leaves task
// manifests behind; the resumed run re-executes only the uncommitted tasks
// (asserted via attempt counters) and completes the identical output.
func TestResumeSkipsCommittedTasks(t *testing.T) {
	eachBackend(t, func(t *testing.T, fs dfs.FS) {
		var recs [][]byte
		for i := 0; i < 40; i++ {
			recs = append(recs, []byte(fmt.Sprintf("r%03d", i)))
		}
		if err := WriteInput(fs, "in/r", recs, 5); err != nil {
			t.Fatal(err)
		}
		job := Job{
			Name: "resumable", FS: fs, InputBase: "in/r", OutputBase: "out/r",
			Mapper: MapFunc(func(_ *TaskContext, rec []byte, emit Emitter) error {
				emit("", bytes.ToUpper(rec))
				return nil
			}),
			Parallelism: 1, // deterministic schedule: tasks run in order
			MaxAttempts: 1,
			Resume:      true,
		}
		// The first run crashes hard on map-00002: tasks 0 and 1 committed,
		// 2 failed, 3 and 4 never ran.
		crashJob := job
		crashJob.FailureHook = func(taskID string, _ int) error {
			if taskID == "map-00002" {
				return errors.New("node lost")
			}
			return nil
		}
		if _, err := Run(crashJob); err == nil {
			t.Fatal("crashing run reported success")
		}

		res, err := Run(job)
		if err != nil {
			t.Fatal(err)
		}
		if res.SkippedTasks != 2 {
			t.Errorf("SkippedTasks = %d, want 2 (map-00000, map-00001 checkpointed)", res.SkippedTasks)
		}
		if res.Attempts != 3 {
			t.Errorf("Attempts = %d, want 3 (only the uncommitted tasks re-execute)", res.Attempts)
		}
		out, err := ReadOutput(fs, "out/r")
		if err != nil {
			t.Fatal(err)
		}
		if len(out) != 40 {
			t.Fatalf("output records = %d, want 40", len(out))
		}
		// A third run finds everything checkpointed and executes nothing.
		res, err = Run(job)
		if err != nil {
			t.Fatal(err)
		}
		if res.Attempts != 0 || res.SkippedTasks != 5 {
			t.Errorf("idempotent re-run: attempts=%d skipped=%d, want 0/5", res.Attempts, res.SkippedTasks)
		}
	})
}

// TestResumeCollectOutput: CollectOutput jobs running with Resume checkpoint
// each task's values, so a resumed run returns identical MapOutputs without
// re-executing completed tasks.
func TestResumeCollectOutput(t *testing.T) {
	eachBackend(t, func(t *testing.T, fs dfs.FS) {
		var recs [][]byte
		for i := 0; i < 24; i++ {
			recs = append(recs, []byte(fmt.Sprintf("v%02d", i)))
		}
		if err := WriteInput(fs, "in/c", recs, 4); err != nil {
			t.Fatal(err)
		}
		job := Job{
			Name: "collect-resume", FS: fs, InputBase: "in/c",
			CollectOutput: true, Resume: true,
			ScratchBase: "work/collect-resume",
			Parallelism: 1, MaxAttempts: 1,
			Mapper: MapFunc(func(_ *TaskContext, rec []byte, emit Emitter) error {
				emit("", bytes.ToUpper(rec))
				return nil
			}),
		}
		first, err := Run(job)
		if err != nil {
			t.Fatal(err)
		}
		second, err := Run(job)
		if err != nil {
			t.Fatal(err)
		}
		if second.Attempts != 0 || second.SkippedTasks != 4 {
			t.Errorf("resumed collect run: attempts=%d skipped=%d, want 0/4", second.Attempts, second.SkippedTasks)
		}
		if len(second.MapOutputs) != len(first.MapOutputs) {
			t.Fatalf("MapOutputs shards = %d, want %d", len(second.MapOutputs), len(first.MapOutputs))
		}
		for s := range first.MapOutputs {
			if len(first.MapOutputs[s]) != len(second.MapOutputs[s]) {
				t.Fatalf("shard %d: %d vs %d values", s, len(first.MapOutputs[s]), len(second.MapOutputs[s]))
			}
			for r := range first.MapOutputs[s] {
				if !bytes.Equal(first.MapOutputs[s][r], second.MapOutputs[s][r]) {
					t.Fatalf("shard %d value %d: %q vs %q", s, r, first.MapOutputs[s][r], second.MapOutputs[s][r])
				}
			}
		}
	})
}

// TestResumeReduceJob: reduce-task manifests resume too, and when every
// reduce task is checkpointed the map phase is skipped entirely.
func TestResumeReduceJob(t *testing.T) {
	eachBackend(t, func(t *testing.T, fs dfs.FS) {
		stageWords(t, fs, "in/w", faultyWords(), 4)
		job := wordCountJob(fs, "in/w", "out/w", 3, 2)
		job.Resume = true
		first, err := Run(job)
		if err != nil {
			t.Fatal(err)
		}
		want, err := ReadOutput(fs, "out/w")
		if err != nil {
			t.Fatal(err)
		}
		second, err := Run(job)
		if err != nil {
			t.Fatal(err)
		}
		if second.Attempts != 0 {
			t.Errorf("fully-checkpointed re-run launched %d attempts", second.Attempts)
		}
		if second.SkippedTasks != first.MapTasks+first.ReduceTasks {
			t.Errorf("SkippedTasks = %d, want %d", second.SkippedTasks, first.MapTasks+first.ReduceTasks)
		}
		got, err := ReadOutput(fs, "out/w")
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("output changed across resume: %d vs %d records", len(got), len(want))
		}
	})
}

// TestResumeKeyGuardsManifests: checkpoints written for a logically
// different job (different ResumeKey, e.g. another labeling-function set)
// are ignored, not reused.
func TestResumeKeyGuardsManifests(t *testing.T) {
	fs := dfs.NewMem()
	stageWords(t, fs, "in/w", []string{"a", "b", "c", "d"}, 2)
	job := Job{
		Name: "keyed", FS: fs, InputBase: "in/w", OutputBase: "out/w",
		Mapper: MapFunc(func(_ *TaskContext, rec []byte, emit Emitter) error {
			emit("", rec)
			return nil
		}),
		Resume:    true,
		ResumeKey: "lfset-v1",
	}
	if _, err := Run(job); err != nil {
		t.Fatal(err)
	}
	job.ResumeKey = "lfset-v2"
	res, err := Run(job)
	if err != nil {
		t.Fatal(err)
	}
	if res.SkippedTasks != 0 {
		t.Errorf("manifests reused across resume keys: skipped %d tasks", res.SkippedTasks)
	}
}

// TestFailedRunCommitsNothing: without Resume, a permanently failing job
// removes whatever individual tasks had promoted — no partial shard set and
// no runtime litter survives, restoring the old all-or-nothing contract.
func TestFailedRunCommitsNothing(t *testing.T) {
	fs := dfs.NewMem()
	stageWords(t, fs, "in/w", []string{"a", "b", "c", "d", "e", "f"}, 3)
	job := Job{
		Name: "doomed", FS: fs, InputBase: "in/w", OutputBase: "out/w",
		Mapper: MapFunc(func(_ *TaskContext, rec []byte, emit Emitter) error {
			emit("", rec)
			return nil
		}),
		Parallelism: 1,
		MaxAttempts: 2,
		FailureHook: func(taskID string, _ int) error {
			if taskID == "map-00002" {
				return errors.New("permanent failure")
			}
			return nil
		},
	}
	if _, err := Run(job); err == nil {
		t.Fatal("doomed job reported success")
	}
	paths, err := fs.List("")
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range paths {
		if !strings.HasPrefix(p, "in/w") {
			t.Errorf("failed run left %s behind", p)
		}
	}
}

// countingWorker wraps the in-process backend to prove Job.Workers is a real
// seam: the coordinator schedules onto whatever backend it is handed.
type countingWorker struct {
	inner Worker
	n     *int64
	mu    *sync.Mutex
}

func (w countingWorker) RunTask(ctx context.Context, spec TaskSpec) (*TaskResult, error) {
	w.mu.Lock()
	*w.n++
	w.mu.Unlock()
	return w.inner.RunTask(ctx, spec)
}

func TestCustomWorkerBackend(t *testing.T) {
	fs := dfs.NewMem()
	stageWords(t, fs, "in/w", []string{"x", "y", "z"}, 3)
	job := Job{
		Name: "custom", FS: fs, InputBase: "in/w", OutputBase: "out/w",
		Mapper: MapFunc(func(_ *TaskContext, rec []byte, emit Emitter) error {
			emit("", rec)
			return nil
		}),
	}
	var n int64
	var mu sync.Mutex
	for _, inner := range newLocalPool(&job, 2) {
		job.Workers = append(job.Workers, countingWorker{inner: inner, n: &n, mu: &mu})
	}
	res, err := Run(job)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(res.Attempts) || n != 3 {
		t.Errorf("custom backend saw %d attempts, result says %d, want 3", n, res.Attempts)
	}
}
