package mapreduce

import (
	"bytes"
	"context"
	"encoding/binary"
	"fmt"
	"sort"

	"repro/internal/dfs"
	"repro/internal/recordio"
)

// TaskKind distinguishes map from reduce tasks.
type TaskKind int

// Task kinds.
const (
	MapTask TaskKind = iota
	ReduceTask
)

// String returns "map" or "reduce".
func (k TaskKind) String() string {
	if k == ReduceTask {
		return "reduce"
	}
	return "map"
}

// TaskSpec describes one task attempt for a Worker. It carries only
// data-plane information — paths on the distributed filesystem and layout
// parameters — so that a future out-of-process backend can execute the same
// spec; the user functions (Mapper/Reducer) belong to the worker, not the
// spec.
type TaskSpec struct {
	// Job is the owning job's name.
	Job string
	// Kind selects the map or reduce code path.
	Kind TaskKind
	// Index is the task index within its kind.
	Index int
	// Attempt is the 1-based attempt number, unique across retries and
	// speculative launches of the same task.
	Attempt int
	// Inputs are the task's input files: the single input shard for a map
	// task, or the shuffle partition files (in map-task order) for a reduce
	// task.
	Inputs []string
	// InputBase is the job's sharded input base path. Remote workers use it
	// to build job code that needs a whole-corpus view (e.g. a labeling
	// function's corpus-fit pass) before executing any task.
	InputBase string
	// Code names the worker-side implementation of the job's user functions
	// (see Job.Code). The in-process backend carries its functions directly
	// and ignores it; a remote worker resolves it in its job-code registry.
	Code string
	// NumReducers, for map tasks of reducing jobs, is the partition count
	// the task's emissions are split into. Zero means map-only.
	NumReducers int
	// Scratch is the job's runtime area; all attempt output is committed
	// under Scratch/_attempts/<task>/a<attempt> so a killed or losing
	// attempt never touches a path any reader consumes.
	Scratch string
	// Collect asks the worker to return emitted values in memory instead of
	// committing an output file (map-only jobs with Job.CollectOutput).
	Collect bool
	// Persist, with Collect, additionally commits the values to the scratch
	// area so a resumed run can recover them without re-execution.
	Persist bool
	// Generation echoes Job.Generation: the artifact generation an
	// incremental job's output publishes, zero for full batch runs.
	Generation int
}

// TaskID names the task within its job, e.g. "map-00002".
func (s TaskSpec) TaskID() string {
	return fmt.Sprintf("%s-%05d", s.Kind, s.Index)
}

// attemptBase is the attempt-scoped path prefix all of this attempt's output
// is written under.
func (s TaskSpec) attemptBase() string {
	return fmt.Sprintf("%s/_attempts/%s/a%04d", s.Scratch, s.TaskID(), s.Attempt)
}

// TaskResult reports one completed task attempt.
type TaskResult struct {
	// TaskID and Attempt echo the spec.
	TaskID  string
	Attempt int
	// Values holds the emitted values in order when the spec asked to
	// Collect.
	Values [][]byte
	// Paths lists the attempt-scoped files this attempt committed: one per
	// reduce partition for map tasks of reducing jobs (index == partition),
	// otherwise at most one output file. The coordinator promotes a winning
	// attempt's paths to their canonical names via atomic rename.
	Paths []string
	// Records is the number of input records processed.
	Records int
	// Counters are the attempt's counter increments. The coordinator merges
	// exactly one attempt's counters per task — the winner's — so job
	// counters stay deterministic under retries and speculation.
	Counters map[string]int64
}

// Worker executes one map or reduce task attempt against a dfs.FS and
// returns the committed attempt-scoped shard paths. Implementations must be
// safe for one task at a time per Worker value; the coordinator runs one
// goroutine per Worker. The in-process pool (newLocalPool) is the first
// backend; the interface is the seam for out-of-process executors.
type Worker interface {
	RunTask(ctx context.Context, spec TaskSpec) (*TaskResult, error)
}

// localWorker is the in-process backend: it holds the job's user functions
// and executes attempts on the calling goroutine, one simulated compute node
// per Worker.
type localWorker struct {
	fs          dfs.FS
	jobName     string
	mapper      Mapper
	reducer     Reducer
	failureHook func(taskID string, attempt int) error
}

// newLocalPool builds the in-process worker pool for a job: n workers, each
// standing in for one compute node.
func newLocalPool(job *Job, n int) []Worker {
	ws := make([]Worker, n)
	for i := range ws {
		ws[i] = &localWorker{
			fs:          job.FS,
			jobName:     job.Name,
			mapper:      job.Mapper,
			reducer:     job.Reducer,
			failureHook: job.FailureHook,
		}
	}
	return ws
}

// RunTask implements Worker.
func (w *localWorker) RunTask(ctx context.Context, spec TaskSpec) (*TaskResult, error) {
	if w.failureHook != nil {
		if err := w.failureHook(spec.TaskID(), spec.Attempt); err != nil {
			return &TaskResult{TaskID: spec.TaskID(), Attempt: spec.Attempt, Counters: map[string]int64{}}, err
		}
	}
	return ExecuteTask(ctx, w.fs, spec, w.jobName, w.mapper, w.reducer)
}

// ExecuteTask runs one task attempt against fs with the given user
// functions and commits the attempt-scoped output the spec asks for. It is
// the data-plane half of a Worker, shared by the in-process pool and
// out-of-process backends (internal/mapreduce/remote): a remote worker
// resolves spec.Code to its Mapper/Reducer and calls ExecuteTask against
// its coordinator's filesystem gateway. A failed attempt removes whatever
// it already committed, so it never leaves partial output behind.
func ExecuteTask(ctx context.Context, fs dfs.FS, spec TaskSpec, jobName string, mapper Mapper, reducer Reducer) (res *TaskResult, err error) {
	w := &taskExec{fs: fs, jobName: jobName, mapper: mapper, reducer: reducer}
	counters := NewCounterSet()
	tctx := &TaskContext{
		Ctx:      ctx,
		JobName:  jobName,
		TaskID:   spec.TaskID(),
		Attempt:  spec.Attempt,
		Counters: counters,
	}
	if spec.Kind == ReduceTask {
		res, err = w.runReduce(ctx, tctx, spec)
	} else {
		res, err = w.runMap(ctx, tctx, spec)
	}
	if err != nil && res != nil {
		// A failed attempt must leave nothing behind: whatever it already
		// committed to its attempt-scoped area is removed best-effort (the
		// paths are attempt-scoped, so even a leak is never consumed).
		//drybellvet:tightloop — cleanup must finish even under cancellation
		for _, p := range res.Paths {
			_ = w.fs.Remove(p)
		}
		res.Paths = nil
		res.Values = nil
	}
	return res, err
}

// taskExec is ExecuteTask's receiver: the filesystem and user functions one
// attempt executes against.
type taskExec struct {
	fs      dfs.FS
	jobName string
	mapper  Mapper
	reducer Reducer
}

// runMap executes one map task attempt: read the input shard, run the
// mapper, and commit the emissions — partitioned for reducing jobs, in input
// order otherwise — under the attempt-scoped scratch area.
func (w *taskExec) runMap(ctx context.Context, tctx *TaskContext, spec TaskSpec) (*TaskResult, error) {
	res := &TaskResult{TaskID: tctx.TaskID, Attempt: spec.Attempt}
	defer func() { res.Counters = tctx.Counters.Snapshot() }()
	if len(spec.Inputs) != 1 {
		return res, fmt.Errorf("map task has %d inputs, want 1", len(spec.Inputs))
	}
	data, err := w.fs.ReadFile(spec.Inputs[0])
	if err != nil {
		return res, err
	}
	records, err := recordio.ReadAll(bytes.NewReader(data))
	if err != nil {
		return res, err
	}
	res.Records = len(records)

	if err := w.mapper.Setup(tctx); err != nil {
		return res, fmt.Errorf("setup: %w", err)
	}
	var pairs []kv
	seq := 0
	emit := func(key string, value []byte) {
		cp := make([]byte, len(value))
		copy(cp, value)
		pairs = append(pairs, kv{key: key, value: cp, mapTask: spec.Index, seq: seq})
		seq++
	}
	var mapErr error
	if bm, ok := w.mapper.(BatchMapper); ok {
		if mapErr = ctx.Err(); mapErr == nil {
			mapErr = bm.MapBatch(tctx, records, emit)
		}
	} else {
		for _, rec := range records {
			if mapErr = ctx.Err(); mapErr != nil {
				break
			}
			if mapErr = w.mapper.Map(tctx, rec, emit); mapErr != nil {
				break
			}
		}
	}
	tdErr := w.mapper.Teardown(tctx)
	if mapErr != nil {
		return res, mapErr
	}
	if tdErr != nil {
		return res, fmt.Errorf("teardown: %w", tdErr)
	}

	if spec.NumReducers > 0 {
		return res, w.commitPartitions(res, spec, pairs)
	}
	values := pairsValues(pairs)
	if spec.Collect {
		res.Values = values
		if !spec.Persist {
			return res, nil
		}
	}
	payload, err := encodeRecords(values)
	if err != nil {
		return res, err
	}
	path := spec.attemptBase() + ".out"
	if err := w.fs.WriteFile(path, payload); err != nil {
		return res, err
	}
	res.Paths = []string{path}
	return res, nil
}

// commitPartitions splits a map attempt's emissions by key hash and commits
// one shuffle file per reduce partition (empty partitions included, so the
// reduce side needs no existence probing).
func (w *taskExec) commitPartitions(res *TaskResult, spec TaskSpec, pairs []kv) error {
	parts := make([][]kv, spec.NumReducers)
	for _, p := range pairs {
		r := partition(p.key, spec.NumReducers)
		parts[r] = append(parts[r], p)
	}
	for r, part := range parts {
		var buf bytes.Buffer
		rw := recordio.NewWriter(&buf)
		for _, p := range part {
			if err := rw.Write(encodeKV(p.key, p.value)); err != nil {
				return err
			}
		}
		if err := rw.Flush(); err != nil {
			return err
		}
		path := fmt.Sprintf("%s.p%05d", spec.attemptBase(), r)
		if err := w.fs.WriteFile(path, buf.Bytes()); err != nil {
			return err
		}
		res.Paths = append(res.Paths, path)
	}
	return nil
}

// runReduce executes one reduce task attempt: read every map task's shuffle
// file for this partition, restore the deterministic (key, map task,
// emission) order, fold each key group through the reducer, and commit one
// attempt-scoped output shard.
func (w *taskExec) runReduce(ctx context.Context, tctx *TaskContext, spec TaskSpec) (*TaskResult, error) {
	res := &TaskResult{TaskID: tctx.TaskID, Attempt: spec.Attempt}
	defer func() { res.Counters = tctx.Counters.Snapshot() }()
	var part []kv
	for mapIdx, path := range spec.Inputs {
		if err := ctx.Err(); err != nil {
			return res, err
		}
		data, err := w.fs.ReadFile(path)
		if err != nil {
			return res, err
		}
		recs, err := recordio.ReadAll(bytes.NewReader(data))
		if err != nil {
			return res, fmt.Errorf("shuffle file %s: %w", path, err)
		}
		for seq, rec := range recs {
			key, value, err := decodeKV(rec)
			if err != nil {
				return res, fmt.Errorf("shuffle file %s record %d: %w", path, seq, err)
			}
			part = append(part, kv{key: key, value: value, mapTask: mapIdx, seq: seq})
		}
	}
	res.Records = len(part)
	sort.Slice(part, func(a, b int) bool {
		pa, pb := part[a], part[b]
		if pa.key != pb.key {
			return pa.key < pb.key
		}
		if pa.mapTask != pb.mapTask {
			return pa.mapTask < pb.mapTask
		}
		return pa.seq < pb.seq
	})

	var out [][]byte
	emit := func(_ string, value []byte) {
		cp := make([]byte, len(value))
		copy(cp, value)
		out = append(out, cp)
	}
	for i := 0; i < len(part); {
		if err := ctx.Err(); err != nil {
			return res, err
		}
		j := i
		for j < len(part) && part[j].key == part[i].key {
			j++
		}
		values := make([][]byte, 0, j-i)
		for k := i; k < j; k++ {
			values = append(values, part[k].value)
		}
		if err := w.reducer.Reduce(tctx, part[i].key, values, emit); err != nil {
			return res, err
		}
		i = j
	}
	payload, err := encodeRecords(out)
	if err != nil {
		return res, err
	}
	path := spec.attemptBase() + ".out"
	if err := w.fs.WriteFile(path, payload); err != nil {
		return res, err
	}
	res.Paths = []string{path}
	return res, nil
}

// pairsValues projects emitted pairs to their values, preserving order.
func pairsValues(pairs []kv) [][]byte {
	vals := make([][]byte, len(pairs))
	for i, p := range pairs {
		vals[i] = p.value
	}
	return vals
}

// encodeRecords frames records as one recordio payload.
func encodeRecords(recs [][]byte) ([]byte, error) {
	var buf bytes.Buffer
	if err := recordio.WriteAll(&buf, recs); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// encodeKV frames one shuffled pair as uvarint key length + key + value.
func encodeKV(key string, value []byte) []byte {
	out := make([]byte, 0, binary.MaxVarintLen64+len(key)+len(value))
	var lenBuf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(lenBuf[:], uint64(len(key)))
	out = append(out, lenBuf[:n]...)
	out = append(out, key...)
	out = append(out, value...)
	return out
}

// decodeKV parses a record framed by encodeKV.
func decodeKV(rec []byte) (string, []byte, error) {
	klen, n := binary.Uvarint(rec)
	if n <= 0 || uint64(len(rec)-n) < klen {
		return "", nil, fmt.Errorf("mapreduce: malformed shuffle record")
	}
	key := string(rec[n : n+int(klen)])
	return key, rec[n+int(klen):], nil
}
