package nlp

import (
	"fmt"

	"repro/internal/lru"
)

// Annotator is the call surface labeling functions use to reach the NLP
// models. *Server is the direct implementation; Cache wraps any Annotator
// with memoization for the online serving path, where the same content can
// arrive many times and the models are too expensive to re-run (§5.1's
// rationale for keeping them out of the serving stack in the first place).
type Annotator interface {
	Annotate(text string) (*Result, error)
}

var _ Annotator = (*Server)(nil)

// Cache memoizes Annotate calls in an LRU keyed on the annotated text. Safe
// for concurrent use. Racing misses on the same text may both consult the
// inner annotator, and for a stochastic annotator (NER with a nonzero miss
// rate) the answers can differ — whichever Add lands last is what later
// lookups see. The cache therefore pins one annotation per text for its
// residency, which is the serving-side contract we want: repeated traffic
// gets a consistent answer without re-running the models.
type Cache struct {
	inner Annotator
	lru   *lru.Cache[string, *Result]
}

var _ Annotator = (*Cache)(nil)

// NewCache wraps inner with an LRU of the given capacity.
func NewCache(inner Annotator, capacity int) (*Cache, error) {
	if inner == nil {
		return nil, fmt.Errorf("nlp: NewCache(nil)")
	}
	l, err := lru.New[string, *Result](capacity)
	if err != nil {
		return nil, fmt.Errorf("nlp: %w", err)
	}
	return &Cache{inner: inner, lru: l}, nil
}

// Annotate returns the cached result for text, consulting the inner
// annotator on a miss. Errors are not cached, so a transient failure does
// not poison the key.
func (c *Cache) Annotate(text string) (*Result, error) {
	if res, ok := c.lru.Get(text); ok {
		return res, nil
	}
	res, err := c.inner.Annotate(text)
	if err != nil {
		return nil, err
	}
	c.lru.Add(text, res)
	return res, nil
}

// Hits returns the number of Annotate calls served from the cache.
func (c *Cache) Hits() int64 { return c.lru.Hits() }

// Misses returns the number of Annotate calls that reached the models.
func (c *Cache) Misses() int64 { return c.lru.Misses() }

// HitRate returns hits/(hits+misses), or 0 before any call.
func (c *Cache) HitRate() float64 { return c.lru.HitRate() }
