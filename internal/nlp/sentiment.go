package nlp

// Sentiment lexicon for the sentiment scorer. A small, broad-purpose model
// of the kind the paper notes organizations keep on hand (§7.1 cites
// open-source sentiment models as weak-supervision candidates).

var positiveWords = map[string]bool{
	"amazing": true, "brilliant": true, "delightful": true, "stunning": true,
	"beloved": true, "thrilling": true, "wonderful": true, "superb": true,
	"acclaimed": true, "dazzling": true, "triumphant": true, "glamorous": true,
}

var negativeWords = map[string]bool{
	"terrible": true, "scandal": true, "dreadful": true, "flop": true,
	"lawsuit": true, "fraud": true, "outrage": true, "dismal": true,
	"bankrupt": true, "recall": true, "disaster": true, "plunge": true,
}

// ScoreSentiment returns a score in [-1, 1]: (pos − neg) / (pos + neg),
// or 0 for neutral text.
func ScoreSentiment(text string) float64 {
	pos, neg := 0, 0
	for _, w := range Words(text) {
		if positiveWords[w] {
			pos++
		}
		if negativeWords[w] {
			neg++
		}
	}
	if pos+neg == 0 {
		return 0
	}
	return float64(pos-neg) / float64(pos+neg)
}
