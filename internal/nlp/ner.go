package nlp

import (
	"encoding/binary"
	"hash/fnv"
	"strings"
)

// EntityType classifies a recognized entity.
type EntityType int

// Entity types produced by the NER model.
const (
	EntityPerson EntityType = iota
	EntityOrg
	EntityPlace
)

func (t EntityType) String() string {
	switch t {
	case EntityPerson:
		return "person"
	case EntityOrg:
		return "org"
	case EntityPlace:
		return "place"
	default:
		return "unknown"
	}
}

// Entity is one recognized span.
type Entity struct {
	// Text is the normalized entity string, e.g. "ava stone".
	Text string
	// Type is the entity class.
	Type EntityType
	// Confidence is the model's score in (0,1].
	Confidence float64
}

// NER is a gazetteer-based named-entity recognizer with configurable
// per-mention miss probability, standing in for Google's internal NER
// models. It is safe for concurrent use.
//
// Misses are a pure function of (seed, text, mention), not of a sequential
// random stream: a labeling function's vote on a document must not depend on
// where the document sits in an execution stream, or incremental delta
// execution (which repositions documents into their own small jobs) could
// never reproduce a full run's votes byte for byte.
type NER struct {
	// MissRate is the probability a true mention is not recognized,
	// simulating model recall < 1. Zero means perfect gazetteer recall.
	MissRate float64

	seed    int64
	bigrams map[string]EntityType // write-once in NewNER, immutable after; lock-free reads are safe
}

// NewNER builds the recognizer over the package gazetteers.
func NewNER(missRate float64, seed int64) *NER {
	n := &NER{
		MissRate: missRate,
		seed:     seed,
		bigrams:  make(map[string]EntityType),
	}
	for _, p := range CelebrityNames {
		n.bigrams[p] = EntityPerson
	}
	for _, p := range OtherPersonNames {
		n.bigrams[p] = EntityPerson
	}
	for _, o := range OrgNames {
		n.bigrams[o] = EntityOrg
	}
	for _, pl := range PlaceNames {
		n.bigrams[pl] = EntityPlace
	}
	return n
}

// Recognize returns the entities found in text. Multi-word gazetteer entries
// are matched over adjacent token windows (the gazetteers use one- and
// two-token names).
func (n *NER) Recognize(text string) []Entity {
	words := Words(text)
	var out []Entity
	seen := map[string]bool{}
	emit := func(name string, typ EntityType) {
		if seen[name] {
			return
		}
		if n.MissRate > 0 && missFraction(n.seed, text, name) < n.MissRate {
			return
		}
		seen[name] = true
		out = append(out, Entity{Text: name, Type: typ, Confidence: 0.9})
	}
	for i := 0; i < len(words); i++ {
		if i+1 < len(words) {
			pair := words[i] + " " + words[i+1]
			if typ, ok := n.bigrams[pair]; ok {
				emit(pair, typ)
				continue
			}
		}
		if typ, ok := n.bigrams[words[i]]; ok {
			emit(words[i], typ)
		}
	}
	return out
}

// People filters entities to persons.
func People(entities []Entity) []Entity {
	var out []Entity
	for _, e := range entities {
		if e.Type == EntityPerson {
			out = append(out, e)
		}
	}
	return out
}

// ContainsName reports whether any entity matches the given normalized name.
func ContainsName(entities []Entity, name string) bool {
	name = strings.ToLower(name)
	for _, e := range entities {
		if e.Text == name {
			return true
		}
	}
	return false
}

// missFraction maps (seed, text, mention) to a deterministic uniform fraction
// in [0,1): the same mention in the same document under the same seed always
// draws the same number, regardless of what was recognized before it.
func missFraction(seed int64, text, name string) float64 {
	h := fnv.New64a()
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(seed))
	h.Write(b[:])
	h.Write([]byte(text))
	h.Write([]byte{0})
	h.Write([]byte(name))
	return float64(h.Sum64()>>11) / float64(1<<53)
}
