package nlp

import (
	"strings"
	"sync"
	"testing"
	"testing/quick"
)

func TestTokenizeBasics(t *testing.T) {
	toks := Tokenize("Ava Stone's premiere, 2024!")
	want := []string{"ava", "stone", "s", "premiere", "2024"}
	if len(toks) != len(want) {
		t.Fatalf("tokens = %v", toks)
	}
	for i, w := range want {
		if toks[i].Text != w {
			t.Errorf("token %d = %q, want %q", i, toks[i].Text, w)
		}
	}
	if !toks[0].Capitalized || toks[3].Capitalized {
		t.Error("capitalization flags wrong")
	}
	if toks[0].Start != 0 || toks[0].End != 3 {
		t.Errorf("offsets = [%d,%d)", toks[0].Start, toks[0].End)
	}
}

func TestTokenizeEmptyAndPunct(t *testing.T) {
	if got := Tokenize(""); len(got) != 0 {
		t.Errorf("Tokenize(\"\") = %v", got)
	}
	if got := Tokenize("...!!!"); len(got) != 0 {
		t.Errorf("Tokenize(punct) = %v", got)
	}
}

// Property: offsets always slice back to text matching the token (modulo case).
func TestTokenizeOffsetsProperty(t *testing.T) {
	f := func(s string) bool {
		for _, tok := range Tokenize(s) {
			if tok.Start < 0 || tok.End > len(s) || tok.Start >= tok.End {
				return false
			}
			if strings.ToLower(s[tok.Start:tok.End]) != tok.Text {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestBigrams(t *testing.T) {
	got := Bigrams([]string{"a", "b", "c"})
	if len(got) != 2 || got[0] != "a_b" || got[1] != "b_c" {
		t.Errorf("Bigrams = %v", got)
	}
	if Bigrams([]string{"solo"}) != nil {
		t.Error("single word should have no bigrams")
	}
}

func TestNERFindsGazetteerEntities(t *testing.T) {
	ner := NewNER(0, 1)
	ents := ner.Recognize("Ava Stone visited Quantix Labs in Eastport.")
	byType := map[EntityType][]string{}
	for _, e := range ents {
		byType[e.Type] = append(byType[e.Type], e.Text)
	}
	if len(byType[EntityPerson]) != 1 || byType[EntityPerson][0] != "ava stone" {
		t.Errorf("persons = %v", byType[EntityPerson])
	}
	if len(byType[EntityOrg]) != 1 || byType[EntityOrg][0] != "quantix labs" {
		t.Errorf("orgs = %v", byType[EntityOrg])
	}
	if len(byType[EntityPlace]) != 1 || byType[EntityPlace][0] != "eastport" {
		t.Errorf("places = %v", byType[EntityPlace])
	}
}

func TestNERMissesUnknownNames(t *testing.T) {
	ner := NewNER(0, 1)
	ents := ner.Recognize("Tilda Vess gave a speech.")
	if len(People(ents)) != 0 {
		t.Errorf("NER should not know held-out names, got %v", ents)
	}
}

func TestNERMissRate(t *testing.T) {
	ner := NewNER(1.0, 1) // always miss
	if got := ner.Recognize("Ava Stone arrived."); len(got) != 0 {
		t.Errorf("MissRate=1 still recognized %v", got)
	}
}

func TestNERDeduplicates(t *testing.T) {
	ner := NewNER(0, 1)
	ents := ner.Recognize("ava stone met ava stone")
	if len(ents) != 1 {
		t.Errorf("duplicate mentions not merged: %v", ents)
	}
}

func TestNERConcurrent(t *testing.T) {
	ner := NewNER(0.3, 1)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				ner.Recognize("Ava Stone and Howard Fleck in Eastport")
			}
		}()
	}
	wg.Wait() // passes if no race under -race
}

func TestContainsName(t *testing.T) {
	ents := []Entity{{Text: "ava stone", Type: EntityPerson}}
	if !ContainsName(ents, "Ava Stone") {
		t.Error("ContainsName should be case-insensitive")
	}
	if ContainsName(ents, "liam cross") {
		t.Error("ContainsName false positive")
	}
}

func TestTopicModelClassifies(t *testing.T) {
	tm := NewTopicModel()
	topic, score := tm.Top("the premiere drew paparazzi to the redcarpet award show")
	if topic != TopicEntertainment {
		t.Errorf("Top = %q, want entertainment", topic)
	}
	if score <= 0 || score > 1 {
		t.Errorf("score = %v", score)
	}
	topic, _ = tm.Top("quarterly earnings and dividend yield beat inflation")
	if topic != TopicFinance {
		t.Errorf("Top = %q, want finance", topic)
	}
}

func TestTopicModelUncuedText(t *testing.T) {
	tm := NewTopicModel()
	if got := tm.Classify("zzz qqq www"); got != nil {
		t.Errorf("Classify(uncued) = %v", got)
	}
	topic, score := tm.Top("zzz")
	if topic != "" || score != 0 {
		t.Errorf("Top(uncued) = %q, %v", topic, score)
	}
}

func TestTopicScoresNormalized(t *testing.T) {
	tm := NewTopicModel()
	scores := tm.Classify("premiere league earnings recipe")
	sum := 0.0
	for _, s := range scores {
		sum += s.Score
	}
	if sum < 0.999 || sum > 1.001 {
		t.Errorf("scores sum to %v", sum)
	}
	for i := 0; i+1 < len(scores); i++ {
		if scores[i].Score < scores[i+1].Score {
			t.Error("scores not sorted descending")
		}
	}
}

func TestSentiment(t *testing.T) {
	if s := ScoreSentiment("an amazing stunning superb show"); s != 1 {
		t.Errorf("positive sentiment = %v", s)
	}
	if s := ScoreSentiment("scandal lawsuit fraud"); s != -1 {
		t.Errorf("negative sentiment = %v", s)
	}
	if s := ScoreSentiment("the show happened"); s != 0 {
		t.Errorf("neutral sentiment = %v", s)
	}
	if s := ScoreSentiment("amazing scandal"); s != 0 {
		t.Errorf("mixed sentiment = %v", s)
	}
}

func TestServerLifecycle(t *testing.T) {
	s := NewServer(0, 1)
	if _, err := s.Annotate("x"); err != ErrNotLaunched {
		t.Errorf("Annotate before launch: %v", err)
	}
	if err := s.Launch(); err != nil {
		t.Fatal(err)
	}
	if err := s.Launch(); err == nil {
		t.Error("double launch accepted")
	}
	res, err := s.Annotate("Ava Stone at the premiere")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.People()) != 1 {
		t.Errorf("people = %v", res.People())
	}
	if res.TopTopic() != TopicEntertainment {
		t.Errorf("top topic = %q", res.TopTopic())
	}
	if s.Calls() != 1 {
		t.Errorf("calls = %d", s.Calls())
	}
	s.Stop()
	if _, err := s.Annotate("x"); err != ErrNotLaunched {
		t.Errorf("Annotate after stop: %v", err)
	}
}

func TestResultTopTopicEmpty(t *testing.T) {
	r := &Result{}
	if r.TopTopic() != "" {
		t.Error("empty result TopTopic should be empty")
	}
}
