package nlp

import (
	"sort"
)

// Coarse semantic categories produced by the topic model. The paper's topic
// model "output semantic categorizations far too coarse-grained for the
// targeted task at hand, but which nonetheless could be used as effective
// negative labeling heuristics" (§3.1).
const (
	TopicEntertainment = "entertainment"
	TopicSports        = "sports"
	TopicTechnology    = "technology"
	TopicFinance       = "finance"
	TopicHealth        = "health"
	TopicTravel        = "travel"
	TopicFood          = "food"
	TopicShopping      = "shopping"
)

// AllTopics lists every coarse category in a stable order.
var AllTopics = []string{
	TopicEntertainment, TopicSports, TopicTechnology, TopicFinance,
	TopicHealth, TopicTravel, TopicFood, TopicShopping,
}

// TopicVocab maps each coarse category to its cue words. The corpus
// generator draws document text from these same distributions, which is what
// makes the topic model an informative (but coarse) signal.
var TopicVocab = map[string][]string{
	// Note: the celebrity-specific keywords ("paparazzi", "redcarpet",
	// "gossip", "spotlight") are deliberately NOT in this vocabulary — the
	// topic model is coarse-grained (§3.1): it recognizes entertainment,
	// not celebrity-hood.
	TopicEntertainment: {
		"premiere", "blockbuster", "award", "studio", "concert", "album",
		"backstage", "movie", "tour", "fans", "soundtrack", "sequel",
	},
	TopicSports: {
		"league", "season", "playoff", "coach", "stadium", "transfer",
		"championship", "tournament", "score", "injury", "roster", "defense",
	},
	TopicTechnology: {
		"startup", "software", "chip", "cloud", "platform", "api",
		"algorithm", "device", "battery", "silicon", "neural", "encryption",
	},
	TopicFinance: {
		"earnings", "dividend", "portfolio", "equity", "bond", "inflation",
		"quarterly", "revenue", "ipo", "hedge", "yield", "merger",
	},
	TopicHealth: {
		"clinic", "vaccine", "therapy", "nutrition", "diagnosis", "wellness",
		"cardio", "symptom", "trial", "dosage", "immune", "recovery",
	},
	TopicTravel: {
		"itinerary", "resort", "passport", "airline", "voyage", "landmark",
		"hostel", "cruise", "backpacking", "visa", "layover", "beachfront",
	},
	TopicFood: {
		"recipe", "sourdough", "roast", "umami", "bistro", "ferment",
		"saute", "garnish", "tasting", "brunch", "vegan", "pantry",
	},
	TopicShopping: {
		"discount", "checkout", "warranty", "bundle", "clearance", "retailer",
		"shipping", "catalog", "voucher", "restock", "bestseller", "cart",
	},
}

// TopicModel is a multinomial scorer over the coarse categories, standing in
// for the internally maintained semantic-categorization model. It is
// stateless and safe for concurrent use.
type TopicModel struct {
	wordTopics map[string][]string
}

// NewTopicModel builds the scorer from TopicVocab.
func NewTopicModel() *TopicModel {
	m := &TopicModel{wordTopics: make(map[string][]string)}
	for topic, words := range TopicVocab {
		for _, w := range words {
			m.wordTopics[w] = append(m.wordTopics[w], topic)
		}
	}
	return m
}

// TopicScore is one category with its normalized score.
type TopicScore struct {
	Topic string
	Score float64
}

// Classify scores text against every coarse category and returns the
// categories sorted by descending score. Texts with no cue words return nil.
func (m *TopicModel) Classify(text string) []TopicScore {
	counts := map[string]float64{}
	total := 0.0
	for _, w := range Words(text) {
		for _, topic := range m.wordTopics[w] {
			counts[topic]++
			total++
		}
	}
	if total == 0 {
		return nil
	}
	out := make([]TopicScore, 0, len(counts))
	for topic, c := range counts {
		out = append(out, TopicScore{Topic: topic, Score: c / total})
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].Score != out[b].Score {
			return out[a].Score > out[b].Score
		}
		return out[a].Topic < out[b].Topic
	})
	return out
}

// Top returns the best category and its score, or ("", 0) for uncued text.
func (m *TopicModel) Top(text string) (string, float64) {
	scores := m.Classify(text)
	if len(scores) == 0 {
		return "", 0
	}
	return scores[0].Topic, scores[0].Score
}
