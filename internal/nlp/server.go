package nlp

import (
	"errors"
	"sync"
	"sync/atomic"
	"time"
)

// Result is the full annotation bundle an NLPLabelingFunction receives for
// one example (the paper's NLPResult).
type Result struct {
	// Entities found by the NER model.
	Entities []Entity
	// Topics are the coarse semantic categories, best first.
	Topics []TopicScore
	// Sentiment is in [-1, 1].
	Sentiment float64
}

// People returns the person entities in the result.
func (r *Result) People() []Entity { return People(r.Entities) }

// TopTopic returns the best coarse category, or "".
func (r *Result) TopTopic() string {
	if len(r.Topics) == 0 {
		return ""
	}
	return r.Topics[0].Topic
}

// Server bundles the NLP models behind the model-server interface that the
// NLPLabelingFunction template launches on each compute node (§5.1). It
// tracks launch state and call counts so tests can assert the template's
// lifecycle, and can simulate per-call latency to model the expense that
// makes these models non-servable.
type Server struct {
	ner   *NER
	topic *TopicModel

	// CallLatency, if nonzero, is slept on every Annotate call.
	CallLatency time.Duration

	mu       sync.Mutex
	launched bool // guarded by mu
	calls    atomic.Int64
}

// NewServer builds a server with the given NER miss rate and seed.
func NewServer(missRate float64, seed int64) *Server {
	return &Server{ner: NewNER(missRate, seed), topic: NewTopicModel()}
}

// ErrNotLaunched is returned by Annotate before Launch (or after Stop).
var ErrNotLaunched = errors.New("nlp: model server not launched")

// Launch starts the server. The MapReduce task Setup hook calls this once
// per compute node.
func (s *Server) Launch() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.launched {
		return errors.New("nlp: model server already launched")
	}
	s.launched = true
	return nil
}

// Stop shuts the server down; Teardown calls this.
func (s *Server) Stop() {
	s.mu.Lock()
	s.launched = false
	s.mu.Unlock()
}

// Launched reports whether the server is running.
func (s *Server) Launched() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.launched
}

// Calls returns the number of Annotate calls served.
func (s *Server) Calls() int64 { return s.calls.Load() }

// Annotate runs all models over the text.
func (s *Server) Annotate(text string) (*Result, error) {
	if !s.Launched() {
		return nil, ErrNotLaunched
	}
	if s.CallLatency > 0 {
		time.Sleep(s.CallLatency)
	}
	s.calls.Add(1)
	return &Result{
		Entities:  s.ner.Recognize(text),
		Topics:    s.topic.Classify(text),
		Sentiment: ScoreSentiment(text),
	}, nil
}
