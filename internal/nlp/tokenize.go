// Package nlp simulates Google's general-purpose natural language processing
// models (paper §5.1): a tokenizer, a named-entity recognizer, a coarse
// semantic-categorization ("topic") model, and a sentiment scorer, bundled
// behind a model server that labeling functions launch per compute node via
// the NLPLabelingFunction template.
//
// The models are gazetteer- and lexicon-based with controlled noise. What
// matters for the reproduction is their statistical role, not their NLP
// sophistication: they are broad-purpose, moderately accurate, expensive
// signals that are non-servable at inference time (too slow to run on all
// incoming content) but excellent weak supervision.
package nlp

import (
	"strings"
	"unicode"
)

// Token is one normalized token with its source offset.
type Token struct {
	// Text is the lower-cased token text.
	Text string
	// Start and End are byte offsets into the original string.
	Start, End int
	// Capitalized records whether the original token began with an
	// upper-case letter (a cue for the NER model).
	Capitalized bool
}

// Tokenize splits text into word tokens, lower-casing and recording
// capitalization. Punctuation separates tokens and is dropped.
func Tokenize(text string) []Token {
	var tokens []Token
	start := -1
	cap := false
	flush := func(end int) {
		if start >= 0 {
			tokens = append(tokens, Token{
				Text:        strings.ToLower(text[start:end]),
				Start:       start,
				End:         end,
				Capitalized: cap,
			})
			start = -1
		}
	}
	for i, r := range text {
		if unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_' {
			if start < 0 {
				start = i
				cap = unicode.IsUpper(r)
			}
			continue
		}
		flush(i)
	}
	flush(len(text))
	return tokens
}

// Words returns just the normalized token strings.
func Words(text string) []string {
	toks := Tokenize(text)
	out := make([]string, len(toks))
	for i, t := range toks {
		out[i] = t.Text
	}
	return out
}

// Bigrams returns adjacent token pairs joined by '_', used by the feature
// extractor and the topic model.
func Bigrams(words []string) []string {
	if len(words) < 2 {
		return nil
	}
	out := make([]string, 0, len(words)-1)
	for i := 0; i+1 < len(words); i++ {
		out = append(out, words[i]+"_"+words[i+1])
	}
	return out
}
