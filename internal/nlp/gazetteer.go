package nlp

// Gazetteers backing the NER model. The corpus generator draws names from
// these same lists (plus held-out names the NER cannot know, simulating
// recall gaps), so NER behaves like a real broad-purpose model: high but
// imperfect precision and recall on person mentions.

// CelebrityNames are person entities whose knowledge-graph occupation is
// "celebrity". Used by the topic-classification case study (§5.1's example
// labeling function targets celebrity content).
var CelebrityNames = []string{
	"ava stone", "liam cross", "mia delgado", "noah pierce", "zara quinn",
	"kai rivers", "luna ashford", "dante wolfe", "iris vale", "rocco lane",
	"stella marsh", "jude harlow", "nova reyes", "silas crane", "esme ford",
	"axel winters", "cleo banks", "ezra holt", "gigi moreau", "hugo blaze",
	"indie rose", "jett calloway", "kira solace", "leo castellan", "maeve torres",
	"nico vance", "opal hendrix", "pax whitman", "quincy adler", "remy fontaine",
}

// OtherPersonNames are person entities that are not celebrities
// (politicians, scientists, athletes). They make person-presence alone an
// imperfect celebrity signal, as in the paper's example LF.
var OtherPersonNames = []string{
	"howard fleck", "dora nielsen", "omar hassan", "petra novak", "ravi mehta",
	"sonia alvarez", "tomas lindqvist", "ursula beck", "viktor orlov", "wendy chu",
	"yusuf demir", "zoe kaminski", "albert nash", "brenda osei", "carl jensen",
	"denise fuentes", "edgar ramos", "fiona gallagher", "george okafor", "hana sato",
}

// UnknownPersonNames appear in documents but are absent from every
// gazetteer; the NER misses them, creating realistic recall gaps.
var UnknownPersonNames = []string{
	"tilda vess", "oren lockhart", "pia strand", "matteo kerr", "sable finch",
	"june arbor", "colt mercer", "wren oakley", "dex palmer", "lyra monroe",
}

// OrgNames are organization entities.
var OrgNames = []string{
	"quantix labs", "helios energy", "northwind bank", "bluepeak media",
	"vertex motors", "ardent health", "cascade foods", "polaris airlines",
	"summit retail", "ionic software",
}

// PlaceNames are location entities.
var PlaceNames = []string{
	"eastport", "graniteville", "lakemont", "silverton", "marrow bay",
	"kestrel city", "dunmore", "aurora falls", "westbrook", "cinder hills",
}
