package nlp

import (
	"errors"
	"sync"
	"testing"
)

func launchedServer(t *testing.T) *Server {
	t.Helper()
	s := NewServer(0, 1)
	if err := s.Launch(); err != nil {
		t.Fatal(err)
	}
	return s
}

func TestCacheAvoidsRepeatAnnotation(t *testing.T) {
	srv := launchedServer(t)
	c, err := NewCache(srv, 8)
	if err != nil {
		t.Fatal(err)
	}
	first, err := c.Annotate("Ava Stone walks the redcarpet")
	if err != nil {
		t.Fatal(err)
	}
	second, err := c.Annotate("Ava Stone walks the redcarpet")
	if err != nil {
		t.Fatal(err)
	}
	if srv.Calls() != 1 {
		t.Errorf("server calls = %d, want 1 (second hit cached)", srv.Calls())
	}
	if first != second {
		t.Error("cache returned a different result object on hit")
	}
	if c.Hits() != 1 || c.Misses() != 1 {
		t.Errorf("hits=%d misses=%d, want 1/1", c.Hits(), c.Misses())
	}
}

func TestCacheEvictsOldTexts(t *testing.T) {
	srv := launchedServer(t)
	c, _ := NewCache(srv, 2)
	for _, text := range []string{"one", "two", "three", "one"} {
		if _, err := c.Annotate(text); err != nil {
			t.Fatal(err)
		}
	}
	// "one" was evicted by "three", so it re-annotated: 4 model calls.
	if srv.Calls() != 4 {
		t.Errorf("server calls = %d, want 4 after eviction", srv.Calls())
	}
}

type failingAnnotator struct{ calls int }

func (f *failingAnnotator) Annotate(string) (*Result, error) {
	f.calls++
	return nil, errors.New("boom")
}

func TestCacheDoesNotCacheErrors(t *testing.T) {
	inner := &failingAnnotator{}
	c, _ := NewCache(inner, 8)
	for i := 0; i < 3; i++ {
		if _, err := c.Annotate("x"); err == nil {
			t.Fatal("error swallowed")
		}
	}
	if inner.calls != 3 {
		t.Errorf("inner calls = %d, want 3 (errors not cached)", inner.calls)
	}
}

func TestCacheRejectsBadArgs(t *testing.T) {
	if _, err := NewCache(nil, 8); err == nil {
		t.Error("nil annotator accepted")
	}
	if _, err := NewCache(NewServer(0, 1), 0); err == nil {
		t.Error("zero capacity accepted")
	}
}

func TestCacheConcurrent(t *testing.T) {
	srv := launchedServer(t)
	c, _ := NewCache(srv, 16)
	var wg sync.WaitGroup
	texts := []string{"alpha beat", "beta court", "gamma field", "delta stage"}
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				if _, err := c.Annotate(texts[i%len(texts)]); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if c.Hits() == 0 {
		t.Error("no cache hits under repeated traffic")
	}
}
