package obs

import (
	"strings"
	"testing"
)

// TestPrometheusExpositionGolden pins the full text exposition: HELP/TYPE
// ordering, family sorting, label-value and help escaping, and cumulative
// histogram buckets. Observation values are chosen exactly representable in
// binary so the formatted sums are stable.
func TestPrometheusExpositionGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("zeta_total", "Last family alphabetically.").Add(7)
	r.Counter("alpha_requests_total", `A "quoted" help with \slash`+"\nand newline.",
		Label{"path", "predict"}).Add(3)
	r.Counter("alpha_requests_total", `A "quoted" help with \slash`+"\nand newline.",
		Label{"path", `we"ird\va` + "l\nue"}).Inc()
	r.Gauge("mid_gauge", "A gauge.").Set(2.5)
	h := r.Histogram("lat_seconds", "Latency.", []float64{0.5, 1})
	h.Observe(0.25)
	h.Observe(0.5) // le is inclusive: lands in the 0.5 bucket
	h.Observe(4)   // overflow bucket

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `# HELP alpha_requests_total A "quoted" help with \\slash\nand newline.
# TYPE alpha_requests_total counter
alpha_requests_total{path="predict"} 3
alpha_requests_total{path="we\"ird\\va` + `l\nue"} 1
# HELP lat_seconds Latency.
# TYPE lat_seconds histogram
lat_seconds_bucket{le="0.5"} 2
lat_seconds_bucket{le="1"} 2
lat_seconds_bucket{le="+Inf"} 3
lat_seconds_sum 4.75
lat_seconds_count 3
# HELP mid_gauge A gauge.
# TYPE mid_gauge gauge
mid_gauge 2.5
# HELP zeta_total Last family alphabetically.
# TYPE zeta_total counter
zeta_total 7
`
	if got := b.String(); got != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

func TestGetOrCreateReturnsSameSeries(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x_total", "h", Label{"a", "1"}, Label{"b", "2"})
	// Label order must not matter: series identity is the sorted signature.
	b := r.Counter("x_total", "h", Label{"b", "2"}, Label{"a", "1"})
	if a != b {
		t.Fatal("same labels in different order produced distinct series")
	}
	a.Inc()
	if b.Value() != 1 {
		t.Fatalf("got %d, want 1", b.Value())
	}
}

func TestKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("dual_total", "h")
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering a counter as a gauge did not panic")
		}
	}()
	r.Gauge("dual_total", "h")
}

func TestHistogramQuantile(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("q_seconds", "h", []float64{1, 2, 4})
	// 10 observations uniform in (0,1]: p50 interpolates inside [0,1].
	for i := 0; i < 10; i++ {
		h.Observe(0.5)
	}
	if q := h.Quantile(0.5); q <= 0 || q > 1 {
		t.Errorf("p50 = %v, want within (0,1]", q)
	}
	h.Observe(100) // overflow clamps to the largest finite bound
	if q := h.Quantile(1); q != 4 {
		t.Errorf("p100 with overflow = %v, want 4", q)
	}
	empty := r.Histogram("empty_seconds", "h", []float64{1})
	if q := empty.Quantile(0.99); q != 0 {
		t.Errorf("quantile of empty histogram = %v, want 0", q)
	}
}

func TestGaugeAdd(t *testing.T) {
	var g Gauge
	g.Set(1.5)
	g.Add(2)
	g.Add(-0.5)
	if v := g.Value(); v != 3 {
		t.Fatalf("got %v, want 3", v)
	}
}

func TestInvalidNamesPanic(t *testing.T) {
	r := NewRegistry()
	for _, bad := range []string{"", "1abc", "with-dash", "sp ace"} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("metric name %q did not panic", bad)
				}
			}()
			r.Counter(bad, "h")
		}()
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error(`label key "le" did not panic`)
			}
		}()
		r.Counter("ok_total", "h", Label{"le", "x"})
	}()
}
