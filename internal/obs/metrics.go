package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Label is one constant name/value pair identifying a metric series within
// its family, e.g. {Key: "path", Value: "predict"}.
type Label struct {
	Key, Value string
}

// Registry is a set of metric families. The zero value is not usable;
// construct with NewRegistry. Safe for concurrent use.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family // guarded by mu
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// metricKind discriminates the three family types.
type metricKind int

const (
	counterKind metricKind = iota
	gaugeKind
	histogramKind
)

func (k metricKind) String() string {
	switch k {
	case counterKind:
		return "counter"
	case gaugeKind:
		return "gauge"
	default:
		return "histogram"
	}
}

// family is one named metric family holding all its labeled series.
type family struct {
	name    string
	help    string
	kind    metricKind
	buckets []float64 // histogram upper bounds; nil for other kinds

	mu     sync.Mutex
	series map[string]any // guarded by mu; label signature -> *Counter|*Gauge|*Histogram
}

// family returns the named family, creating it on first use. Re-registering
// a name with a different kind (or different histogram buckets) is a
// programming error and panics: two call sites disagreeing about a metric's
// shape would silently corrupt the exposition otherwise.
func (r *Registry) family(name, help string, kind metricKind, buckets []float64) *family {
	if !validMetricName(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, kind: kind, buckets: buckets,
			series: make(map[string]any)}
		r.families[name] = f
		return f
	}
	if f.kind != kind {
		panic(fmt.Sprintf("obs: metric %s registered as both %s and %s", name, f.kind, kind))
	}
	if kind == histogramKind && !sameBuckets(f.buckets, buckets) {
		panic(fmt.Sprintf("obs: histogram %s registered with two different bucket sets", name))
	}
	return f
}

// get returns the series for the label set, creating it with mk on first use.
func (f *family) get(labels []Label, mk func() any) any {
	sig := signature(labels)
	f.mu.Lock()
	defer f.mu.Unlock()
	if m, ok := f.series[sig]; ok {
		return m
	}
	m := mk()
	f.series[sig] = m
	return m
}

// Counter returns the counter series for name and labels, registering both
// on first use. Counters only go up.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	f := r.family(name, help, counterKind, nil)
	return f.get(labels, func() any { return &Counter{} }).(*Counter)
}

// Gauge returns the gauge series for name and labels, registering both on
// first use.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	f := r.family(name, help, gaugeKind, nil)
	return f.get(labels, func() any { return &Gauge{} }).(*Gauge)
}

// Histogram returns the histogram series for name and labels, registering
// both on first use. buckets are the inclusive upper bounds, strictly
// ascending; an implicit +Inf overflow bucket is always appended. Every
// series of one family must use the same buckets.
func (r *Registry) Histogram(name, help string, buckets []float64, labels ...Label) *Histogram {
	if len(buckets) == 0 {
		panic(fmt.Sprintf("obs: histogram %s needs at least one bucket", name))
	}
	for i := 1; i < len(buckets); i++ {
		if buckets[i] <= buckets[i-1] {
			panic(fmt.Sprintf("obs: histogram %s buckets must ascend strictly", name))
		}
	}
	f := r.family(name, help, histogramKind, buckets)
	return f.get(labels, func() any { return newHistogram(f.buckets) }).(*Histogram)
}

// Counter is a monotonically increasing integer metric. The zero value is
// ready to use; updates are a single atomic add.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds delta. Counters are monotonic; callers must not pass negatives.
func (c *Counter) Add(delta int64) { c.v.Add(delta) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a float metric that can go up and down, stored as atomic bits.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the gauge's value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adjusts the gauge by delta (CAS loop; callers are expected to be
// low-frequency).
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		nv := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, nv) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a fixed-bucket histogram: observations land in the first
// bucket whose upper bound is >= the value (Prometheus "le" semantics), with
// an implicit +Inf overflow bucket. Updates are atomic adds plus one CAS for
// the running sum — no locks on the observation path.
type Histogram struct {
	bounds []float64
	counts []atomic.Int64 // len(bounds)+1; the last is the +Inf bucket
	sum    atomic.Uint64  // float64 bits, CAS-accumulated
	n      atomic.Int64
}

func newHistogram(bounds []float64) *Histogram {
	return &Histogram{bounds: bounds, counts: make([]atomic.Int64, len(bounds)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v; len(bounds) = +Inf
	h.counts[i].Add(1)
	h.n.Add(1)
	for {
		old := h.sum.Load()
		nv := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, nv) {
			return
		}
	}
}

// ObserveDuration records a duration in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.n.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// Bounds returns the bucket upper bounds (without the implicit +Inf).
func (h *Histogram) Bounds() []float64 { return h.bounds }

// BucketCounts returns the per-bucket (non-cumulative) counts; the last
// entry is the +Inf overflow bucket.
func (h *Histogram) BucketCounts() []int64 {
	out := make([]int64, len(h.counts))
	for i := range h.counts {
		out[i] = h.counts[i].Load()
	}
	return out
}

// Quantile estimates the q-quantile (q in [0,1]) by linear interpolation
// within the bucket holding the target rank — the standard
// histogram_quantile estimate. Returns 0 with no observations; values in
// the overflow bucket clamp to the largest finite bound.
func (h *Histogram) Quantile(q float64) float64 {
	counts := h.BucketCounts()
	var total int64
	for _, c := range counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	q = math.Max(0, math.Min(1, q))
	rank := q * float64(total)
	var cum float64
	for i, c := range counts {
		if c == 0 {
			continue
		}
		prev := cum
		cum += float64(c)
		if cum >= rank {
			if i == len(h.bounds) {
				return h.bounds[len(h.bounds)-1]
			}
			lo := 0.0
			if i > 0 {
				lo = h.bounds[i-1]
			}
			hi := h.bounds[i]
			frac := (rank - prev) / float64(c)
			if frac < 0 {
				frac = 0
			}
			return lo + (hi-lo)*frac
		}
	}
	return h.bounds[len(h.bounds)-1]
}

// DefLatencyBuckets are the default latency histogram bounds, in seconds:
// 0.5ms to 10s, roughly log-spaced.
var DefLatencyBuckets = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// signature renders labels in canonical (key-sorted, escaped) exposition
// form, e.g. `op="write",path="a"`. It doubles as the series identity.
func signature(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	canon := make([]Label, len(labels))
	copy(canon, labels)
	sort.Slice(canon, func(a, b int) bool { return canon[a].Key < canon[b].Key })
	var b strings.Builder
	for i, l := range canon {
		if !validLabelKey(l.Key) {
			panic(fmt.Sprintf("obs: invalid label key %q", l.Key))
		}
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(l.Value))
		b.WriteByte('"')
	}
	return b.String()
}

func sameBuckets(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		switch {
		case r == '_' || r == ':',
			r >= 'a' && r <= 'z',
			r >= 'A' && r <= 'Z',
			i > 0 && r >= '0' && r <= '9':
		default:
			return false
		}
	}
	return true
}

func validLabelKey(s string) bool {
	if s == "" || s == "le" { // le is reserved for histogram buckets
		return false
	}
	for i, r := range s {
		switch {
		case r == '_',
			r >= 'a' && r <= 'z',
			r >= 'A' && r <= 'Z',
			i > 0 && r >= '0' && r <= '9':
		default:
			return false
		}
	}
	return true
}
