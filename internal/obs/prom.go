package obs

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
)

// WritePrometheus renders every family in the registry in the Prometheus
// text exposition format (version 0.0.4): families sorted by name, each
// preceded by its # HELP and # TYPE lines, series sorted by label
// signature. Histograms expose cumulative _bucket{le=...} series plus _sum
// and _count, matching what promtool and scrapers expect.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	fams := make([]*family, 0, len(names))
	sort.Strings(names)
	for _, name := range names {
		fams = append(fams, r.families[name])
	}
	r.mu.Unlock()

	for _, f := range fams {
		if err := f.write(w); err != nil {
			return err
		}
	}
	return nil
}

func (f *family) write(w io.Writer) error {
	f.mu.Lock()
	sigs := make([]string, 0, len(f.series))
	for sig := range f.series {
		sigs = append(sigs, sig)
	}
	sort.Strings(sigs)
	series := make([]any, len(sigs))
	for i, sig := range sigs {
		series[i] = f.series[sig]
	}
	f.mu.Unlock()

	if len(series) == 0 {
		return nil
	}
	if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n",
		f.name, escapeHelp(f.help), f.name, f.kind); err != nil {
		return err
	}
	for i, m := range series {
		sig := sigs[i]
		switch v := m.(type) {
		case *Counter:
			if err := writeSample(w, f.name, sig, "", formatInt(v.Value())); err != nil {
				return err
			}
		case *Gauge:
			if err := writeSample(w, f.name, sig, "", formatFloat(v.Value())); err != nil {
				return err
			}
		case *Histogram:
			counts := v.BucketCounts()
			var cum int64
			for bi, bound := range v.Bounds() {
				cum += counts[bi]
				le := `le="` + formatFloat(bound) + `"`
				if err := writeSample(w, f.name+"_bucket", joinSig(sig, le), "", formatInt(cum)); err != nil {
					return err
				}
			}
			cum += counts[len(counts)-1]
			if err := writeSample(w, f.name+"_bucket", joinSig(sig, `le="+Inf"`), "", formatInt(cum)); err != nil {
				return err
			}
			if err := writeSample(w, f.name+"_sum", sig, "", formatFloat(v.Sum())); err != nil {
				return err
			}
			if err := writeSample(w, f.name+"_count", sig, "", formatInt(v.Count())); err != nil {
				return err
			}
		}
	}
	return nil
}

func writeSample(w io.Writer, name, sig, _ string, value string) error {
	var err error
	if sig == "" {
		_, err = fmt.Fprintf(w, "%s %s\n", name, value)
	} else {
		_, err = fmt.Fprintf(w, "%s{%s} %s\n", name, sig, value)
	}
	return err
}

func joinSig(sig, extra string) string {
	if sig == "" {
		return extra
	}
	return sig + "," + extra
}

func formatInt(v int64) string { return strconv.FormatInt(v, 10) }

func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeHelp escapes a HELP string per the exposition format: backslash and
// newline only.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// escapeLabelValue escapes a label value per the exposition format:
// backslash, double quote, and newline.
func escapeLabelValue(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// Handler returns an http.Handler serving the registry in the Prometheus
// text exposition format.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
}
