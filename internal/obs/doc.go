// Package obs is the repository's unified observability layer: a stdlib-only
// metrics registry, context-propagated tracing, and exporters that turn a
// pipeline run into operable telemetry. The paper's core claim is that weak
// supervision works as a production system at industrial scale (§5.4), and
// production systems are operated through their telemetry — this package is
// the shared substrate behind the pipeline's stage events, the distributed
// runtime's attempt accounting, and the serving tier's request metrics.
//
// # Metrics
//
// A Registry holds counters, gauges, and fixed-bucket histograms, each
// optionally carrying constant labels. Series are get-or-create — asking for
// the same name and label set twice returns the same metric — and every
// update is lock-free (atomics only), so instrumented hot paths pay
// nanoseconds, not mutexes. WritePrometheus renders the whole registry in
// the Prometheus text exposition format, and Handler serves it over HTTP
// (cmd/drybelld mounts it at /metrics).
//
// # Tracing
//
// StartSpan(ctx, name, attrs...) opens a span as a child of whatever span
// ctx already carries, and returns a ctx carrying the new span. When no
// Tracer is attached to the context (WithTracer), StartSpan returns a nil
// span whose methods are all no-ops — tracing off costs one context lookup.
// The pipeline threads spans through every stage, the fused LF executor,
// each MapReduce task attempt (retries and speculative siblings become
// sibling spans with win/lose outcome attributes), and the serve request
// paths.
//
// # Exporters
//
// ChromeTrace renders a tracer's finished spans as Chrome trace-event JSON,
// loadable in Perfetto (https://ui.perfetto.dev): spans are packed onto
// lanes so overlapping attempts render as a Gantt chart of the distributed
// run. Pipeline runs write it to the DFS as "<workdir>/_obs/trace.json";
// the -trace flag of cmd/drybell, cmd/lfrun, and cmd/drybelld writes a
// local copy. InstrumentFS wraps a dfs.FS so every filesystem operation
// feeds op/latency/byte metrics into a registry.
package obs
