package obs

import (
	"encoding/json"
	"fmt"
	"io"
)

// chromeEvent is one entry of the Chrome trace-event format's traceEvents
// array. Only "X" (complete) and "M" (metadata) phases are emitted.
type chromeEvent struct {
	Name  string         `json:"name"`
	Phase string         `json:"ph"`
	TS    int64          `json:"ts"`            // microseconds since trace start
	Dur   int64          `json:"dur,omitempty"` // microseconds
	PID   int            `json:"pid"`
	TID   int            `json:"tid"`
	Args  map[string]any `json:"args,omitempty"`
	CName string         `json:"cname,omitempty"`
}

// chromeTrace is the top-level Chrome trace-event JSON object.
type chromeTrace struct {
	DisplayTimeUnit string        `json:"displayTimeUnit"`
	TraceEvents     []chromeEvent `json:"traceEvents"`
}

// WriteChromeTrace renders the tracer's finished spans as Chrome trace-event
// JSON (https://ui.perfetto.dev loads it directly). Spans are packed onto
// lanes ("threads") greedily: a span shares a lane with its nearest open
// ancestor so nesting renders as a flame graph, while overlapping
// non-ancestor spans — concurrent task attempts, speculative siblings — get
// their own lanes and render side by side as a Gantt chart.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	b, err := t.ChromeTrace()
	if err != nil {
		return err
	}
	_, err = w.Write(b)
	return err
}

// ChromeTrace renders the trace as Chrome trace-event JSON bytes.
func (t *Tracer) ChromeTrace() ([]byte, error) {
	spans := t.Snapshot()
	events := []chromeEvent{{
		Name:  "process_name",
		Phase: "M",
		PID:   1,
		Args:  map[string]any{"name": "drybell"},
	}}
	if len(spans) == 0 {
		return json.Marshal(chromeTrace{DisplayTimeUnit: "ms", TraceEvents: events})
	}

	base := spans[0].Start
	parents := make(map[int64]int64, len(spans))
	for _, s := range spans {
		parents[s.ID] = s.Parent
	}
	isAncestor := func(anc, of int64) bool {
		for of != 0 {
			p := parents[of]
			if p == anc {
				return true
			}
			of = p
		}
		return false
	}

	// Each lane holds a stack of spans still open at the current sweep
	// position; spans arrive in start order, so popping finished spans and
	// checking the top for ancestry is enough to keep nesting on one lane.
	var lanes [][]SpanData
	laneOf := make([]int, len(spans))
	for i, s := range spans {
		placed := -1
		for li := range lanes {
			stack := lanes[li]
			for len(stack) > 0 && !stack[len(stack)-1].End.After(s.Start) {
				stack = stack[:len(stack)-1]
			}
			lanes[li] = stack
			if placed >= 0 {
				continue
			}
			if len(stack) == 0 || isAncestor(stack[len(stack)-1].ID, s.ID) {
				placed = li
			}
		}
		if placed < 0 {
			lanes = append(lanes, nil)
			placed = len(lanes) - 1
		}
		lanes[placed] = append(lanes[placed], s)
		laneOf[i] = placed
	}

	for i, s := range spans {
		args := map[string]any{
			"span_id":   s.ID,
			"parent_id": s.Parent,
		}
		for _, a := range s.Attrs {
			args[a.Key] = a.Value
		}
		ev := chromeEvent{
			Name:  s.Name,
			Phase: "X",
			TS:    s.Start.Sub(base).Microseconds(),
			Dur:   max64(s.End.Sub(s.Start).Microseconds(), 1),
			PID:   1,
			TID:   laneOf[i],
			Args:  args,
		}
		if s.Err != "" {
			ev.Args["error"] = s.Err
			ev.CName = "terrible"
		}
		events = append(events, ev)
	}
	for li := range lanes {
		events = append(events, chromeEvent{
			Name:  "thread_name",
			Phase: "M",
			PID:   1,
			TID:   li,
			Args:  map[string]any{"name": fmt.Sprintf("lane %d", li)},
		})
	}
	return json.Marshal(chromeTrace{DisplayTimeUnit: "ms", TraceEvents: events})
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
