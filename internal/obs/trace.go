package obs

import (
	"context"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// DefaultMaxSpans bounds a tracer's finished-span buffer. A long-lived
// daemon with tracing on must not grow without bound; spans past the cap are
// counted in Dropped and discarded.
const DefaultMaxSpans = 1 << 16

// Attr is one span attribute.
type Attr struct {
	Key   string
	Value any
}

// String builds a string attribute.
func String(k, v string) Attr { return Attr{Key: k, Value: v} }

// Int builds an integer attribute.
func Int(k string, v int) Attr { return Attr{Key: k, Value: int64(v)} }

// Int64 builds an integer attribute.
func Int64(k string, v int64) Attr { return Attr{Key: k, Value: v} }

// Bool builds a boolean attribute.
func Bool(k string, v bool) Attr { return Attr{Key: k, Value: v} }

// Float builds a float attribute.
func Float(k string, v float64) Attr { return Attr{Key: k, Value: v} }

// SpanData is one finished span as recorded by the tracer.
type SpanData struct {
	ID     int64
	Parent int64 // 0 when the span is a root
	Name   string
	Start  time.Time
	End    time.Time
	Attrs  []Attr
	Err    string // non-empty when the span ended with an error
}

// Tracer collects finished spans for export. Construct with NewTracer;
// attach to a context with WithTracer. Safe for concurrent use.
type Tracer struct {
	epoch time.Time
	ids   atomic.Int64
	max   int

	mu       sync.Mutex
	finished []SpanData // guarded by mu
	dropped  int64      // guarded by mu
}

// NewTracer returns a tracer retaining up to DefaultMaxSpans finished spans.
func NewTracer() *Tracer {
	return &Tracer{epoch: time.Now(), max: DefaultMaxSpans}
}

// Dropped reports how many finished spans were discarded because the buffer
// was full.
func (t *Tracer) Dropped() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// Snapshot returns the finished spans sorted by start time (ID breaks ties).
func (t *Tracer) Snapshot() []SpanData {
	t.mu.Lock()
	out := make([]SpanData, len(t.finished))
	copy(out, t.finished)
	t.mu.Unlock()
	sort.Slice(out, func(a, b int) bool {
		if !out[a].Start.Equal(out[b].Start) {
			return out[a].Start.Before(out[b].Start)
		}
		return out[a].ID < out[b].ID
	})
	return out
}

func (t *Tracer) record(s SpanData) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.finished) >= t.max {
		t.dropped++
		return
	}
	t.finished = append(t.finished, s)
}

// Span is one in-flight operation. A nil *Span is valid and all its methods
// are no-ops, so instrumented code never branches on whether tracing is on.
type Span struct {
	tracer *Tracer
	id     int64
	parent int64
	name   string
	start  time.Time

	mu    sync.Mutex
	attrs []Attr // guarded by mu
	done  bool   // guarded by mu
}

type tracerKey struct{}
type spanKey struct{}

// WithTracer returns a context carrying t; StartSpan calls under it record
// spans. A nil tracer returns ctx unchanged.
func WithTracer(ctx context.Context, t *Tracer) context.Context {
	if t == nil {
		return ctx
	}
	return context.WithValue(ctx, tracerKey{}, t)
}

// TracerFrom returns the tracer carried by ctx, or nil.
func TracerFrom(ctx context.Context) *Tracer {
	t, _ := ctx.Value(tracerKey{}).(*Tracer)
	return t
}

// StartSpan opens a span named name as a child of the span ctx carries (a
// root span when there is none) and returns a context carrying the new
// span. When ctx has no tracer the returned span is nil — a no-op — and ctx
// is returned unchanged.
func StartSpan(ctx context.Context, name string, attrs ...Attr) (context.Context, *Span) {
	t := TracerFrom(ctx)
	if t == nil {
		return ctx, nil
	}
	var parent int64
	if p, _ := ctx.Value(spanKey{}).(*Span); p != nil {
		parent = p.id
	}
	s := &Span{
		tracer: t,
		id:     t.ids.Add(1),
		parent: parent,
		name:   name,
		start:  time.Now(),
		attrs:  attrs,
	}
	return context.WithValue(ctx, spanKey{}, s), s
}

// SetAttr appends attributes to the span. No-op on a nil or ended span.
func (s *Span) SetAttr(attrs ...Attr) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.done {
		return
	}
	s.attrs = append(s.attrs, attrs...)
}

// End closes the span successfully. Idempotent; no-op on nil.
func (s *Span) End() { s.end("") }

// EndErr closes the span, recording err's message as the span's error
// status when err is non-nil. Idempotent; no-op on nil.
func (s *Span) EndErr(err error) {
	if err == nil {
		s.end("")
		return
	}
	s.end(err.Error())
}

func (s *Span) end(errMsg string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.done {
		s.mu.Unlock()
		return
	}
	s.done = true
	attrs := s.attrs
	s.mu.Unlock()
	s.tracer.record(SpanData{
		ID:     s.id,
		Parent: s.parent,
		Name:   s.name,
		Start:  s.start,
		End:    time.Now(),
		Attrs:  attrs,
		Err:    errMsg,
	})
}
