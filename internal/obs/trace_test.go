package obs

import (
	"context"
	"encoding/json"
	"errors"
	"testing"
)

func TestSpanNesting(t *testing.T) {
	tr := NewTracer()
	ctx := WithTracer(context.Background(), tr)

	ctx, root := StartSpan(ctx, "root", String("k", "v"))
	cctx, child := StartSpan(ctx, "child")
	_, grand := StartSpan(cctx, "grandchild")
	grand.End()
	child.EndErr(errors.New("boom"))
	root.End()

	spans := tr.Snapshot()
	if len(spans) != 3 {
		t.Fatalf("got %d spans, want 3", len(spans))
	}
	byName := map[string]SpanData{}
	for _, s := range spans {
		byName[s.Name] = s
	}
	if byName["root"].Parent != 0 {
		t.Errorf("root parent = %d, want 0", byName["root"].Parent)
	}
	if byName["child"].Parent != byName["root"].ID {
		t.Errorf("child parent = %d, want root %d", byName["child"].Parent, byName["root"].ID)
	}
	if byName["grandchild"].Parent != byName["child"].ID {
		t.Errorf("grandchild parent = %d, want child %d", byName["grandchild"].Parent, byName["child"].ID)
	}
	if byName["child"].Err != "boom" {
		t.Errorf("child err = %q, want boom", byName["child"].Err)
	}
	if byName["root"].Err != "" {
		t.Errorf("root err = %q, want empty", byName["root"].Err)
	}
	if len(byName["root"].Attrs) != 1 || byName["root"].Attrs[0].Key != "k" {
		t.Errorf("root attrs = %v, want [k=v]", byName["root"].Attrs)
	}
}

func TestNoTracerIsNoOp(t *testing.T) {
	ctx, span := StartSpan(context.Background(), "x")
	if span != nil {
		t.Fatal("StartSpan without a tracer returned a non-nil span")
	}
	// All nil-span methods must be safe.
	span.SetAttr(String("a", "b"))
	span.End()
	span.EndErr(errors.New("ignored"))
	if ctx == nil {
		t.Fatal("ctx lost")
	}
}

func TestDoubleEndRecordsOnce(t *testing.T) {
	tr := NewTracer()
	ctx := WithTracer(context.Background(), tr)
	_, s := StartSpan(ctx, "once")
	s.End()
	s.EndErr(errors.New("late"))
	spans := tr.Snapshot()
	if len(spans) != 1 {
		t.Fatalf("got %d spans, want 1", len(spans))
	}
	if spans[0].Err != "" {
		t.Errorf("second End mutated the span: err = %q", spans[0].Err)
	}
}

func TestTracerDropsBeyondMax(t *testing.T) {
	tr := NewTracer()
	tr.max = 2
	ctx := WithTracer(context.Background(), tr)
	for i := 0; i < 5; i++ {
		_, s := StartSpan(ctx, "s")
		s.End()
	}
	if got := len(tr.Snapshot()); got != 2 {
		t.Errorf("kept %d spans, want 2", got)
	}
	if tr.Dropped() != 3 {
		t.Errorf("dropped = %d, want 3", tr.Dropped())
	}
}

func TestChromeTraceExport(t *testing.T) {
	tr := NewTracer()
	ctx := WithTracer(context.Background(), tr)
	rctx, root := StartSpan(ctx, "job")
	_, a := StartSpan(rctx, "attempt-0", Bool("speculative", false))
	_, b := StartSpan(rctx, "attempt-1", Bool("speculative", true))
	a.End()
	b.EndErr(errors.New("lost"))
	root.End()

	raw, err := tr.ChromeTrace()
	if err != nil {
		t.Fatal(err)
	}
	var trace struct {
		DisplayTimeUnit string `json:"displayTimeUnit"`
		TraceEvents     []struct {
			Name  string         `json:"name"`
			Phase string         `json:"ph"`
			TS    int64          `json:"ts"`
			Dur   int64          `json:"dur"`
			TID   int            `json:"tid"`
			Args  map[string]any `json:"args"`
			CName string         `json:"cname"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &trace); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	if trace.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q", trace.DisplayTimeUnit)
	}
	var xEvents int
	tidByName := map[string]int{}
	for _, ev := range trace.TraceEvents {
		if ev.Phase != "X" {
			continue
		}
		xEvents++
		if ev.TS < 0 || ev.Dur < 1 {
			t.Errorf("event %s: ts=%d dur=%d, want ts>=0 dur>=1", ev.Name, ev.TS, ev.Dur)
		}
		tidByName[ev.Name] = ev.TID
		if ev.Name == "attempt-1" {
			if ev.Args["error"] != "lost" {
				t.Errorf("errored span args = %v, want error=lost", ev.Args)
			}
			if ev.CName == "" {
				t.Error("errored span has no cname highlight")
			}
		}
	}
	if xEvents != 3 {
		t.Fatalf("got %d X events, want 3", xEvents)
	}
	// Concurrent sibling attempts must land on different lanes so Perfetto
	// renders them side by side rather than stacked as fake nesting.
	if tidByName["attempt-0"] == tidByName["attempt-1"] {
		t.Errorf("overlapping siblings share lane %d", tidByName["attempt-0"])
	}
}

func TestObserverContext(t *testing.T) {
	o := NewObserver()
	ctx := o.Context(context.Background())
	if TracerFrom(ctx) != o.Trace {
		t.Fatal("observer did not attach its tracer")
	}
	var nilObs *Observer
	if nilObs.Context(context.Background()) == nil {
		t.Fatal("nil observer broke the context")
	}
}
