package obs

import (
	"time"

	"repro/internal/dfs"
)

// dfsOpBuckets are the DFS operation latency bounds in seconds. DFS ops are
// mostly in-memory or local-disk, so the range starts finer than request
// latency buckets.
var dfsOpBuckets = []float64{
	0.00001, 0.0001, 0.0005, 0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1, 5,
}

// InstrumentFS wraps inner so every operation feeds per-op count, error,
// latency, and byte metrics into reg:
//
//	dfs_ops_total{op}         counter
//	dfs_op_errors_total{op}   counter
//	dfs_op_seconds{op}        histogram
//	dfs_read_bytes_total      counter
//	dfs_written_bytes_total   counter
//
// A nil registry returns inner unchanged.
func InstrumentFS(inner dfs.FS, reg *Registry) dfs.FS {
	if reg == nil {
		return inner
	}
	f := &instrumentedFS{inner: inner, ops: make(map[string]opMetrics, 6)}
	for _, op := range []string{"write", "read", "rename", "remove", "list", "stat"} {
		f.ops[op] = opMetrics{
			calls: reg.Counter("dfs_ops_total", "DFS operations started.", Label{"op", op}),
			errs:  reg.Counter("dfs_op_errors_total", "DFS operations that returned an error.", Label{"op", op}),
			secs:  reg.Histogram("dfs_op_seconds", "DFS operation latency in seconds.", dfsOpBuckets, Label{"op", op}),
		}
	}
	f.readBytes = reg.Counter("dfs_read_bytes_total", "Bytes read from the DFS.")
	f.writtenBytes = reg.Counter("dfs_written_bytes_total", "Bytes written to the DFS.")
	return f
}

type opMetrics struct {
	calls *Counter
	errs  *Counter
	secs  *Histogram
}

type instrumentedFS struct {
	inner        dfs.FS
	ops          map[string]opMetrics
	readBytes    *Counter
	writtenBytes *Counter
}

func (f *instrumentedFS) observe(op string, start time.Time, err error) {
	m := f.ops[op]
	m.calls.Inc()
	m.secs.ObserveDuration(time.Since(start))
	if err != nil {
		m.errs.Inc()
	}
}

// WriteFile implements dfs.FS.
func (f *instrumentedFS) WriteFile(path string, data []byte) error {
	start := time.Now()
	err := f.inner.WriteFile(path, data)
	f.observe("write", start, err)
	if err == nil {
		f.writtenBytes.Add(int64(len(data)))
	}
	return err
}

// ReadFile implements dfs.FS.
func (f *instrumentedFS) ReadFile(path string) ([]byte, error) {
	start := time.Now()
	data, err := f.inner.ReadFile(path)
	f.observe("read", start, err)
	if err == nil {
		f.readBytes.Add(int64(len(data)))
	}
	return data, err
}

// Rename implements dfs.FS.
func (f *instrumentedFS) Rename(oldPath, newPath string) error {
	start := time.Now()
	err := f.inner.Rename(oldPath, newPath)
	f.observe("rename", start, err)
	return err
}

// Remove implements dfs.FS.
func (f *instrumentedFS) Remove(path string) error {
	start := time.Now()
	err := f.inner.Remove(path)
	f.observe("remove", start, err)
	return err
}

// List implements dfs.FS.
func (f *instrumentedFS) List(prefix string) ([]string, error) {
	start := time.Now()
	names, err := f.inner.List(prefix)
	f.observe("list", start, err)
	return names, err
}

// Stat implements dfs.FS.
func (f *instrumentedFS) Stat(path string) (int64, error) {
	start := time.Now()
	size, err := f.inner.Stat(path)
	f.observe("stat", start, err)
	return size, err
}
