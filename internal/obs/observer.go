package obs

import "context"

// Observer bundles the two observability surfaces a pipeline run can carry:
// a metrics registry and a tracer. Either field may be nil; everything
// downstream treats a nil field as "off".
type Observer struct {
	Metrics *Registry
	Trace   *Tracer
}

// NewObserver returns an observer with a fresh registry and tracer.
func NewObserver() *Observer {
	return &Observer{Metrics: NewRegistry(), Trace: NewTracer()}
}

// Context returns ctx carrying the observer's tracer so StartSpan calls
// under it record spans. Nil-safe: a nil observer or nil tracer returns ctx
// unchanged.
func (o *Observer) Context(ctx context.Context) context.Context {
	if o == nil {
		return ctx
	}
	return WithTracer(ctx, o.Trace)
}
