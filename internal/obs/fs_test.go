package obs

import (
	"testing"

	"repro/internal/dfs"
)

func TestInstrumentFSCountsOpsErrorsAndBytes(t *testing.T) {
	reg := NewRegistry()
	fs := InstrumentFS(dfs.NewMem(), reg)

	if err := fs.WriteFile("a/b", []byte("hello")); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.ReadFile("a/b"); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.ReadFile("missing"); err == nil {
		t.Fatal("read of missing file succeeded")
	}
	if err := fs.Rename("a/b", "a/c"); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.List("a/"); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Stat("a/c"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Remove("a/c"); err != nil {
		t.Fatal(err)
	}

	get := func(op string) int64 {
		return reg.Counter("dfs_ops_total", "", Label{"op", op}).Value()
	}
	for op, want := range map[string]int64{
		"write": 1, "read": 2, "rename": 1, "list": 1, "stat": 1, "remove": 1,
	} {
		if got := get(op); got != want {
			t.Errorf("dfs_ops_total{op=%q} = %d, want %d", op, got, want)
		}
	}
	if errs := reg.Counter("dfs_op_errors_total", "", Label{"op", "read"}).Value(); errs != 1 {
		t.Errorf("read errors = %d, want 1", errs)
	}
	if b := reg.Counter("dfs_written_bytes_total", "").Value(); b != 5 {
		t.Errorf("written bytes = %d, want 5", b)
	}
	if b := reg.Counter("dfs_read_bytes_total", "").Value(); b != 5 {
		t.Errorf("read bytes = %d, want 5", b)
	}
	if n := reg.Histogram("dfs_op_seconds", "", dfsOpBuckets, Label{"op", "write"}).Count(); n != 1 {
		t.Errorf("write latency observations = %d, want 1", n)
	}
}

func TestInstrumentFSNilRegistryPassesThrough(t *testing.T) {
	inner := dfs.NewMem()
	if got := InstrumentFS(inner, nil); got != dfs.FS(inner) {
		t.Fatal("nil registry did not return the inner FS unchanged")
	}
}
