package breaker

import (
	"sync"
	"testing"
	"time"
)

// fakeClock is a hand-advanced clock for deterministic cooldown expiry.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func newTestBreaker(threshold int, cooldown time.Duration) (*Breaker, *fakeClock, *[]State) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	var transitions []State
	b := New(threshold, cooldown,
		WithClock(clk.now),
		WithOnChange(func(s State) { transitions = append(transitions, s) }))
	return b, clk, &transitions
}

func TestBreakerTripsAfterThreshold(t *testing.T) {
	b, _, transitions := newTestBreaker(3, time.Second)
	for i := 0; i < 2; i++ {
		b.Failure()
		if !b.Allow() || b.State() != Closed {
			t.Fatalf("failure %d: breaker should still be closed", i+1)
		}
	}
	b.Failure()
	if b.State() != Open {
		t.Fatalf("state after %d failures = %v, want Open", 3, b.State())
	}
	if b.Allow() {
		t.Fatal("open breaker allowed a call before cooldown")
	}
	if len(*transitions) != 1 || (*transitions)[0] != Open {
		t.Fatalf("transitions = %v, want [Open]", *transitions)
	}
}

func TestBreakerSuccessResetsFailureCount(t *testing.T) {
	b, _, _ := newTestBreaker(3, time.Second)
	b.Failure()
	b.Failure()
	b.Success()
	b.Failure()
	b.Failure()
	if b.State() != Closed {
		t.Fatal("interleaved success should reset the consecutive-failure count")
	}
	b.Failure()
	if b.State() != Open {
		t.Fatal("three consecutive failures after reset should trip")
	}
}

func TestBreakerHalfOpenSingleProbe(t *testing.T) {
	b, clk, _ := newTestBreaker(1, time.Second)
	b.Failure()
	if b.Allow() {
		t.Fatal("open breaker allowed a call")
	}
	clk.advance(time.Second)
	if !b.Allow() {
		t.Fatal("cooldown elapsed: first Allow should pass as the probe")
	}
	if b.State() != HalfOpen {
		t.Fatalf("state = %v, want HalfOpen", b.State())
	}
	if b.Allow() {
		t.Fatal("second caller got through while the probe was in flight")
	}
	b.Success()
	if b.State() != Closed || !b.Allow() {
		t.Fatal("probe success should close the breaker")
	}
}

func TestBreakerFailedProbeReopens(t *testing.T) {
	b, clk, transitions := newTestBreaker(1, time.Second)
	b.Failure()
	clk.advance(time.Second)
	if !b.Allow() {
		t.Fatal("probe should be allowed after cooldown")
	}
	b.Failure()
	if b.State() != Open {
		t.Fatalf("state after failed probe = %v, want Open", b.State())
	}
	if b.Allow() {
		t.Fatal("reopened breaker allowed a call before a fresh cooldown")
	}
	clk.advance(time.Second)
	if !b.Allow() {
		t.Fatal("fresh cooldown elapsed: probe should be allowed again")
	}
	want := []State{Open, HalfOpen, Open, HalfOpen}
	if len(*transitions) != len(want) {
		t.Fatalf("transitions = %v, want %v", *transitions, want)
	}
	for i := range want {
		if (*transitions)[i] != want[i] {
			t.Fatalf("transitions = %v, want %v", *transitions, want)
		}
	}
}

func TestBreakerStragglerFailureWhileOpen(t *testing.T) {
	b, clk, _ := newTestBreaker(1, time.Second)
	b.Failure()
	clk.advance(500 * time.Millisecond)
	// A slow in-flight call from before the trip reports failure; it must
	// not extend the cooldown.
	b.Failure()
	clk.advance(500 * time.Millisecond)
	if !b.Allow() {
		t.Fatal("straggler failure extended the cooldown")
	}
}

func TestBreakerConcurrentProbeExclusive(t *testing.T) {
	b, clk, _ := newTestBreaker(1, time.Second)
	b.Failure()
	clk.advance(time.Second)
	var allowed int64
	var mu sync.Mutex
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if b.Allow() {
				mu.Lock()
				allowed++
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	if allowed != 1 {
		t.Fatalf("half-open let %d callers through, want exactly 1 probe", allowed)
	}
}

func TestBreakerDefaultsClamped(t *testing.T) {
	b := New(0, 0)
	b.Failure()
	if b.State() != Open {
		t.Fatal("threshold should clamp to 1")
	}
}

func TestStateString(t *testing.T) {
	for s, want := range map[State]string{Closed: "closed", Open: "open", HalfOpen: "half-open"} { //drybellvet:ordered — assertion map, order immaterial
		if s.String() != want {
			t.Fatalf("State(%d).String() = %q, want %q", s, s.String(), want)
		}
	}
}
