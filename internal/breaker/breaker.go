// Package breaker is a minimal three-state circuit breaker shared by the
// serving tier (NLP-annotator health behind /v1/label) and the remote
// execution tier (worker-side coordinator client). It exists so callers can
// stop hammering a dependency that is demonstrably down and switch to a
// cheaper degraded path, then probe their way back once the dependency
// recovers.
//
// States follow the classic discipline:
//
//	closed    — traffic flows; consecutive failures are counted.
//	open      — Threshold consecutive failures tripped the breaker; Allow
//	            answers false until Cooldown elapses.
//	half-open — one probe is let through after Cooldown; its Success closes
//	            the breaker, its Failure reopens it for another Cooldown.
//
// The breaker is deliberately tiny: no rolling windows, no error-rate math.
// Consecutive-failure counting is the right shape for the dependencies here
// (a model server or coordinator is either reachable or it is not), and it
// keeps state transitions easy to reason about under test.
package breaker

import (
	"sync"
	"time"
)

// State is the breaker's position.
type State int

const (
	// Closed passes traffic and counts consecutive failures.
	Closed State = iota
	// Open fails fast; no traffic until the cooldown elapses.
	Open
	// HalfOpen lets exactly one probe through to test recovery.
	HalfOpen
)

// String renders the state for logs and metric help text.
func (s State) String() string {
	switch s {
	case Closed:
		return "closed"
	case Open:
		return "open"
	default:
		return "half-open"
	}
}

// Breaker is a consecutive-failure circuit breaker. Construct with New; the
// zero value is not usable. Safe for concurrent use.
type Breaker struct {
	threshold int
	cooldown  time.Duration
	now       func() time.Time
	onChange  func(State)

	mu       sync.Mutex
	state    State     // guarded by mu
	failures int       // guarded by mu; consecutive failures while closed
	openedAt time.Time // guarded by mu; when the breaker last tripped
	probing  bool      // guarded by mu; a half-open probe is in flight
}

// Option tweaks a Breaker at construction.
type Option func(*Breaker)

// WithClock swaps the breaker's clock, making cooldown expiry deterministic
// in tests.
func WithClock(now func() time.Time) Option {
	return func(b *Breaker) { b.now = now }
}

// WithOnChange registers a callback invoked (outside the lock) whenever the
// breaker changes state — the hook that keeps a state gauge current.
func WithOnChange(fn func(State)) Option {
	return func(b *Breaker) { b.onChange = fn }
}

// New builds a closed breaker that trips after threshold consecutive
// failures and probes again cooldown after tripping. A threshold < 1 is
// clamped to 1; a cooldown <= 0 defaults to 5s.
func New(threshold int, cooldown time.Duration, opts ...Option) *Breaker {
	if threshold < 1 {
		threshold = 1
	}
	if cooldown <= 0 {
		cooldown = 5 * time.Second
	}
	b := &Breaker{
		threshold: threshold,
		cooldown:  cooldown,
		now:       time.Now, //drybellvet:wallclock — cooldown expiry is operational timing, not data-plane output
	}
	for _, o := range opts {
		o(b)
	}
	return b
}

// Allow reports whether a call may proceed. Closed always allows. Open
// allows nothing until the cooldown elapses, at which point the breaker
// moves to half-open and exactly one caller — the probe — gets true; every
// other caller keeps getting false until the probe reports back.
func (b *Breaker) Allow() bool {
	b.mu.Lock()
	switch b.state {
	case Closed:
		b.mu.Unlock()
		return true
	case Open:
		if b.now().Sub(b.openedAt) < b.cooldown {
			b.mu.Unlock()
			return false
		}
		b.state = HalfOpen
		b.probing = true
		b.mu.Unlock()
		b.notify(HalfOpen)
		return true
	default: // HalfOpen
		if b.probing {
			b.mu.Unlock()
			return false
		}
		b.probing = true
		b.mu.Unlock()
		return true
	}
}

// Success records a successful call: it resets the failure count and, from
// half-open, closes the breaker.
func (b *Breaker) Success() {
	b.mu.Lock()
	b.failures = 0
	changed := b.state != Closed
	b.state = Closed
	b.probing = false
	b.mu.Unlock()
	if changed {
		b.notify(Closed)
	}
}

// Failure records a failed call. From closed it counts toward the
// threshold; reaching it trips the breaker. From half-open (a failed probe)
// it reopens immediately for another full cooldown.
func (b *Breaker) Failure() {
	b.mu.Lock()
	var changed bool
	switch b.state {
	case Closed:
		b.failures++
		if b.failures >= b.threshold {
			b.state = Open
			b.openedAt = b.now()
			changed = true
		}
	case HalfOpen:
		b.state = Open
		b.openedAt = b.now()
		b.probing = false
		changed = true
	default: // Open: a straggling failure from before the trip; nothing to do.
	}
	b.mu.Unlock()
	if changed {
		b.notify(Open)
	}
}

// State returns the breaker's current position. An open breaker whose
// cooldown has elapsed still reads Open until some caller's Allow promotes
// it to half-open.
func (b *Breaker) State() State {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

func (b *Breaker) notify(s State) {
	if b.onChange != nil {
		b.onChange(s)
	}
}
