package dfs

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"testing/quick"
)

// implementations under test.
func eachFS(t *testing.T, fn func(t *testing.T, fs FS)) {
	t.Run("mem", func(t *testing.T) { fn(t, NewMem()) })
	t.Run("disk", func(t *testing.T) {
		d, err := NewDisk(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		fn(t, d)
	})
}

func TestWriteReadRoundTrip(t *testing.T) {
	eachFS(t, func(t *testing.T, fs FS) {
		data := []byte("the quick brown fox")
		if err := fs.WriteFile("dir/sub/file.rec", data); err != nil {
			t.Fatal(err)
		}
		got, err := fs.ReadFile("dir/sub/file.rec")
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, data) {
			t.Errorf("ReadFile = %q, want %q", got, data)
		}
		n, err := fs.Stat("dir/sub/file.rec")
		if err != nil || n != int64(len(data)) {
			t.Errorf("Stat = %d, %v", n, err)
		}
	})
}

func TestReadMissing(t *testing.T) {
	eachFS(t, func(t *testing.T, fs FS) {
		_, err := fs.ReadFile("nope")
		if !IsNotExist(err) {
			t.Errorf("err = %v, want not-exist", err)
		}
	})
}

func TestOverwriteReplaces(t *testing.T) {
	eachFS(t, func(t *testing.T, fs FS) {
		if err := fs.WriteFile("f", []byte("one")); err != nil {
			t.Fatal(err)
		}
		if err := fs.WriteFile("f", []byte("two")); err != nil {
			t.Fatal(err)
		}
		got, _ := fs.ReadFile("f")
		if string(got) != "two" {
			t.Errorf("after overwrite: %q", got)
		}
	})
}

func TestRenameSemantics(t *testing.T) {
	eachFS(t, func(t *testing.T, fs FS) {
		if err := fs.WriteFile("a", []byte("data")); err != nil {
			t.Fatal(err)
		}
		if err := fs.Rename("a", "b"); err != nil {
			t.Fatal(err)
		}
		if _, err := fs.ReadFile("a"); !IsNotExist(err) {
			t.Error("source still exists after rename")
		}
		got, err := fs.ReadFile("b")
		if err != nil || string(got) != "data" {
			t.Errorf("dest = %q, %v", got, err)
		}
		if err := fs.Rename("missing", "c"); !IsNotExist(err) {
			t.Errorf("rename missing: %v", err)
		}
	})
}

func TestRemove(t *testing.T) {
	eachFS(t, func(t *testing.T, fs FS) {
		if err := fs.WriteFile("f", nil); err != nil {
			t.Fatal(err)
		}
		if err := fs.Remove("f"); err != nil {
			t.Fatal(err)
		}
		if err := fs.Remove("f"); !IsNotExist(err) {
			t.Errorf("double remove: %v", err)
		}
	})
}

func TestListPrefix(t *testing.T) {
	eachFS(t, func(t *testing.T, fs FS) {
		for _, p := range []string{"x/a", "x/b", "y/c"} {
			if err := fs.WriteFile(p, nil); err != nil {
				t.Fatal(err)
			}
		}
		got, err := fs.List("x/")
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != 2 || got[0] != "x/a" || got[1] != "x/b" {
			t.Errorf("List(x/) = %v", got)
		}
		all, err := fs.List("")
		if err != nil || len(all) != 3 {
			t.Errorf("List() = %v, %v", all, err)
		}
	})
}

func TestInvalidPaths(t *testing.T) {
	eachFS(t, func(t *testing.T, fs FS) {
		for _, p := range []string{"", "/abs", "trail/", "a//b", "a/../b", "./x"} {
			if err := fs.WriteFile(p, nil); err == nil {
				t.Errorf("WriteFile(%q) accepted invalid path", p)
			}
		}
	})
}

func TestConcurrentWriters(t *testing.T) {
	eachFS(t, func(t *testing.T, fs FS) {
		const n = 32
		var wg sync.WaitGroup
		for i := 0; i < n; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				p := fmt.Sprintf("shard/f-%03d", i)
				if err := fs.WriteFile(p, []byte(p)); err != nil {
					t.Error(err)
				}
			}(i)
		}
		wg.Wait()
		got, err := fs.List("shard/")
		if err != nil || len(got) != n {
			t.Fatalf("List = %d files, %v", len(got), err)
		}
		for _, p := range got {
			data, err := fs.ReadFile(p)
			if err != nil || string(data) != p {
				t.Errorf("file %q holds %q, %v", p, data, err)
			}
		}
	})
}

func TestMemReadIsolation(t *testing.T) {
	m := NewMem()
	if err := m.WriteFile("f", []byte("abc")); err != nil {
		t.Fatal(err)
	}
	got, _ := m.ReadFile("f")
	got[0] = 'X'
	again, _ := m.ReadFile("f")
	if string(again) != "abc" {
		t.Error("ReadFile result aliases stored data")
	}
}

func TestMemWriteIsolation(t *testing.T) {
	m := NewMem()
	data := []byte("abc")
	if err := m.WriteFile("f", data); err != nil {
		t.Fatal(err)
	}
	data[0] = 'X'
	got, _ := m.ReadFile("f")
	if string(got) != "abc" {
		t.Error("WriteFile aliases caller data")
	}
}

func TestMemCorruptFailureInjection(t *testing.T) {
	m := NewMem()
	if err := m.WriteFile("f", []byte("abcd")); err != nil {
		t.Fatal(err)
	}
	if err := m.Corrupt("f", 2); err != nil {
		t.Fatal(err)
	}
	got, _ := m.ReadFile("f")
	if got[2] == 'c' {
		t.Error("Corrupt did not flip the byte")
	}
	if err := m.Corrupt("f", 99); err == nil {
		t.Error("Corrupt out of range accepted")
	}
	if err := m.Corrupt("missing", 0); !IsNotExist(err) {
		t.Errorf("Corrupt missing: %v", err)
	}
}

func TestMemAccounting(t *testing.T) {
	m := NewMem()
	m.WriteFile("a", make([]byte, 10))
	m.WriteFile("b", make([]byte, 5))
	if m.NumFiles() != 2 || m.TotalBytes() != 15 {
		t.Errorf("NumFiles=%d TotalBytes=%d", m.NumFiles(), m.TotalBytes())
	}
}

func TestShardPathRoundTripProperty(t *testing.T) {
	f := func(idx, count uint8) bool {
		n := int(count%50) + 1
		i := int(idx) % n
		p := ShardPath("out/labels", i, n)
		base, gi, gn, ok := ParseShardPath(p)
		return ok && base == "out/labels" && gi == i && gn == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestParseShardPathRejectsGarbage(t *testing.T) {
	bad := []string{"plain", "x-of-y", "f-00001-of-0000", "f-0000a-of-00002", "f-00005-of-00003", ""}
	for _, p := range bad {
		if _, _, _, ok := ParseShardPath(p); ok {
			t.Errorf("ParseShardPath(%q) accepted garbage", p)
		}
	}
}

func TestListShardsCompleteSet(t *testing.T) {
	m := NewMem()
	for i := 0; i < 4; i++ {
		m.WriteFile(ShardPath("out/l", i, 4), []byte{byte(i)})
	}
	got, err := ListShards(m, "out/l")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 4 || got[2] != "out/l-00002-of-00004" {
		t.Errorf("ListShards = %v", got)
	}
}

func TestListShardsMissingShard(t *testing.T) {
	m := NewMem()
	m.WriteFile(ShardPath("out/l", 0, 3), nil)
	m.WriteFile(ShardPath("out/l", 2, 3), nil)
	if _, err := ListShards(m, "out/l"); err == nil {
		t.Error("incomplete shard set accepted")
	}
}

func TestListShardsInconsistentCount(t *testing.T) {
	m := NewMem()
	m.WriteFile(ShardPath("out/l", 0, 2), nil)
	m.WriteFile(ShardPath("out/l", 1, 3), nil)
	if _, err := ListShards(m, "out/l"); err == nil {
		t.Error("inconsistent shard counts accepted")
	}
}

func TestListShardsNone(t *testing.T) {
	if _, err := ListShards(NewMem(), "none"); err == nil {
		t.Error("no shards accepted")
	}
}

func TestWriteShardedRoundRobin(t *testing.T) {
	m := NewMem()
	var records [][]byte
	for i := 0; i < 10; i++ {
		records = append(records, []byte{byte(i)})
	}
	encode := func(recs [][]byte) ([]byte, error) {
		out := []byte{}
		for _, r := range recs {
			out = append(out, r...)
		}
		return out, nil
	}
	if err := WriteSharded(m, "o/r", records, 3, encode); err != nil {
		t.Fatal(err)
	}
	shards, err := ListShards(m, "o/r")
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, s := range shards {
		d, _ := m.ReadFile(s)
		total += len(d)
	}
	if total != 10 {
		t.Errorf("total bytes across shards = %d, want 10", total)
	}
	// No .partial files may remain.
	all, _ := m.List("")
	for _, p := range all {
		if _, _, _, ok := ParseShardPath(p); !ok {
			t.Errorf("leftover non-shard file %q", p)
		}
	}
}

func TestSortedUnion(t *testing.T) {
	got := SortedUnion([]string{"b", "a"}, []string{"a", "c"})
	if len(got) != 3 || got[0] != "a" || got[1] != "b" || got[2] != "c" {
		t.Errorf("SortedUnion = %v", got)
	}
}
