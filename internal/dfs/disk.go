package dfs

import (
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// Disk is a disk-backed FS rooted at a local directory. It maps DFS paths to
// files under the root and uses write-to-temp + rename for atomicity, the
// same commit discipline production distributed filesystems expose.
type Disk struct {
	root string
	mu   sync.Mutex // serializes namespace mutations (rename/remove races)
	seq  int
}

// NewDisk returns a Disk rooted at dir, creating it if needed.
func NewDisk(dir string) (*Disk, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("dfs: create root: %w", err)
	}
	return &Disk{root: dir}, nil
}

// Root returns the backing directory.
func (d *Disk) Root() string { return d.root }

func (d *Disk) real(path string) (string, error) {
	if !validPath(path) {
		return "", ErrBadPath
	}
	return filepath.Join(d.root, filepath.FromSlash(path)), nil //drybellvet:ospath — the DFS-key to OS-path boundary
}

// WriteFile implements FS.
func (d *Disk) WriteFile(path string, data []byte) error {
	rp, err := d.real(path)
	if err != nil {
		return &PathError{"write", path, err}
	}
	if err := os.MkdirAll(filepath.Dir(rp), 0o755); err != nil {
		return &PathError{"write", path, err}
	}
	d.mu.Lock()
	d.seq++
	tmp := fmt.Sprintf("%s.tmp.%d", rp, d.seq)
	d.mu.Unlock()
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return &PathError{"write", path, err}
	}
	if err := os.Rename(tmp, rp); err != nil {
		os.Remove(tmp)
		return &PathError{"write", path, err}
	}
	return nil
}

// ReadFile implements FS.
func (d *Disk) ReadFile(path string) ([]byte, error) {
	rp, err := d.real(path)
	if err != nil {
		return nil, &PathError{"read", path, err}
	}
	data, err := os.ReadFile(rp)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, &PathError{"read", path, ErrNotExist}
		}
		return nil, &PathError{"read", path, err}
	}
	return data, nil
}

// Rename implements FS.
func (d *Disk) Rename(oldPath, newPath string) error {
	ro, err := d.real(oldPath)
	if err != nil {
		return &PathError{"rename", oldPath, err}
	}
	rn, err := d.real(newPath)
	if err != nil {
		return &PathError{"rename", newPath, err}
	}
	if err := os.MkdirAll(filepath.Dir(rn), 0o755); err != nil {
		return &PathError{"rename", newPath, err}
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if _, err := os.Stat(ro); os.IsNotExist(err) {
		return &PathError{"rename", oldPath, ErrNotExist}
	}
	if err := os.Rename(ro, rn); err != nil {
		return &PathError{"rename", oldPath, err}
	}
	return nil
}

// Remove implements FS.
func (d *Disk) Remove(path string) error {
	rp, err := d.real(path)
	if err != nil {
		return &PathError{"remove", path, err}
	}
	if err := os.Remove(rp); err != nil {
		if os.IsNotExist(err) {
			return &PathError{"remove", path, ErrNotExist}
		}
		return &PathError{"remove", path, err}
	}
	return nil
}

// List implements FS.
func (d *Disk) List(prefix string) ([]string, error) {
	var out []string
	err := filepath.WalkDir(d.root, func(p string, de fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if de.IsDir() {
			return nil
		}
		rel, err := filepath.Rel(d.root, p)
		if err != nil {
			return err
		}
		rel = filepath.ToSlash(rel) //drybellvet:ospath — OS path back to DFS key
		if strings.Contains(rel, ".tmp.") {
			return nil // uncommitted write
		}
		if strings.HasPrefix(rel, prefix) {
			out = append(out, rel)
		}
		return nil
	})
	if err != nil {
		return nil, &PathError{"list", prefix, err}
	}
	sort.Strings(out)
	return out, nil
}

// Stat implements FS.
func (d *Disk) Stat(path string) (int64, error) {
	rp, err := d.real(path)
	if err != nil {
		return 0, &PathError{"stat", path, err}
	}
	fi, err := os.Stat(rp)
	if err != nil {
		if os.IsNotExist(err) {
			return 0, &PathError{"stat", path, ErrNotExist}
		}
		return 0, &PathError{"stat", path, err}
	}
	return fi.Size(), nil
}
