package dfs

import (
	"fmt"
	"sort"
	"strings"
)

// ShardPath returns the canonical name of shard i of n for a base path,
// e.g. "labels/topic-00003-of-00010".
func ShardPath(base string, i, n int) string {
	if i < 0 || n <= 0 || i >= n {
		panic(fmt.Sprintf("dfs: invalid shard %d of %d", i, n))
	}
	return fmt.Sprintf("%s-%05d-of-%05d", base, i, n)
}

// ParseShardPath splits a shard path into its base name, shard index and
// shard count. ok is false for non-shard paths.
func ParseShardPath(path string) (base string, index, count int, ok bool) {
	i := strings.LastIndex(path, "-of-")
	if i < 6 {
		return "", 0, 0, false
	}
	countStr := path[i+4:]
	idxStr := path[i-5 : i]
	if len(countStr) != 5 || path[i-6] != '-' {
		return "", 0, 0, false
	}
	index, ok = parseDigits(idxStr)
	if !ok {
		return "", 0, 0, false
	}
	count, ok = parseDigits(countStr)
	if !ok {
		return "", 0, 0, false
	}
	if index < 0 || count <= 0 || index >= count {
		return "", 0, 0, false
	}
	return path[:i-6], index, count, true
}

// parseDigits parses a string of exactly 5 ASCII digits.
func parseDigits(s string) (int, bool) {
	n := 0
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c < '0' || c > '9' {
			return 0, false
		}
		n = n*10 + int(c-'0')
	}
	return n, true
}

// ListShards returns the complete, ordered shard set for base. It errors if
// shards are missing or disagree on the shard count — a partially written
// output must never be consumed (paper: MapReduce outputs commit atomically).
func ListShards(fs FS, base string) ([]string, error) {
	paths, err := fs.List(base + "-")
	if err != nil {
		return nil, err
	}
	count := -1
	found := map[int]string{}
	for _, p := range paths {
		b, idx, n, ok := ParseShardPath(p)
		if !ok || b != base {
			continue
		}
		if count == -1 {
			count = n
		} else if count != n {
			return nil, fmt.Errorf("dfs: inconsistent shard counts for %q: %d vs %d", base, count, n)
		}
		found[idx] = p
	}
	if count == -1 {
		return nil, fmt.Errorf("dfs: no shards found for %q", base)
	}
	out := make([]string, count)
	for i := 0; i < count; i++ {
		p, ok := found[i]
		if !ok {
			return nil, fmt.Errorf("dfs: shard %d of %d missing for %q", i, count, base)
		}
		out[i] = p
	}
	return out, nil
}

// PublishShard commits one shard atomically: the data is written to a
// ".partial" temp file and renamed into place, so readers only ever see a
// complete shard. All shard writers go through here, keeping the commit
// convention in one place.
func PublishShard(fs FS, base string, i, n int, data []byte) error {
	tmp := ShardPath(base, i, n) + ".partial"
	if err := fs.WriteFile(tmp, data); err != nil {
		return err
	}
	return fs.Rename(tmp, ShardPath(base, i, n))
}

// WriteSharded splits records round-robin into n shard files under base,
// each committed atomically via PublishShard. Records are recordio
// payloads; encoding is the caller's concern.
func WriteSharded(fs FS, base string, records [][]byte, n int, encode func([][]byte) ([]byte, error)) error {
	if n <= 0 {
		return fmt.Errorf("dfs: WriteSharded with %d shards", n)
	}
	buckets := make([][][]byte, n)
	for i, rec := range records {
		s := i % n
		buckets[s] = append(buckets[s], rec)
	}
	for i := 0; i < n; i++ {
		data, err := encode(buckets[i])
		if err != nil {
			return fmt.Errorf("dfs: encode shard %d: %w", i, err)
		}
		if err := PublishShard(fs, base, i, n, data); err != nil {
			return err
		}
	}
	return nil
}

// SortedUnion merges several sorted path lists, dropping duplicates.
// Used by tests that combine List results across prefixes.
func SortedUnion(lists ...[]string) []string {
	seen := map[string]bool{}
	var out []string
	for _, l := range lists {
		for _, p := range l {
			if !seen[p] {
				seen[p] = true
				out = append(out, p)
			}
		}
	}
	sort.Strings(out)
	return out
}
