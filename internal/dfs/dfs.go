// Package dfs simulates the distributed filesystem that Snorkel DryBell's
// labeling-function binaries use to exchange data (paper §5.1, §5.4).
//
// The simulation provides the properties the DryBell architecture relies on:
//
//   - a flat hierarchical namespace with directory listing,
//   - whole-file write-then-commit semantics with atomic rename, so a
//     MapReduce shard is either fully visible or absent,
//   - sharded file naming ("name-00003-of-00010") with helpers to enumerate
//     and validate shard sets,
//   - concurrent access from many worker goroutines.
//
// The default store is in-memory; a disk-backed store is provided for
// benchmarks that want real IO. Both implement FS.
package dfs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// FS is the filesystem surface used by the MapReduce and labeling-function
// layers. Implementations must be safe for concurrent use.
type FS interface {
	// WriteFile atomically creates or replaces the file at path.
	WriteFile(path string, data []byte) error
	// ReadFile returns the file's full contents.
	ReadFile(path string) ([]byte, error)
	// Rename atomically moves a file. Destination is replaced if present.
	Rename(oldPath, newPath string) error
	// Remove deletes a file. Removing a missing file is an error.
	Remove(path string) error
	// List returns all file paths with the given prefix, sorted.
	List(prefix string) ([]string, error)
	// Stat returns the file's size in bytes.
	Stat(path string) (int64, error)
}

// PathError describes a filesystem operation failure.
type PathError struct {
	Op   string
	Path string
	Err  error
}

func (e *PathError) Error() string { return "dfs: " + e.Op + " " + e.Path + ": " + e.Err.Error() }

// Unwrap returns the underlying cause.
func (e *PathError) Unwrap() error { return e.Err }

// Sentinel causes for PathError.
var (
	ErrNotExist = fmt.Errorf("file does not exist")
	ErrBadPath  = fmt.Errorf("invalid path")
)

// IsNotExist reports whether err indicates a missing file.
func IsNotExist(err error) bool {
	pe, ok := err.(*PathError)
	return ok && pe.Err == ErrNotExist
}

func validPath(p string) bool {
	if p == "" || strings.HasPrefix(p, "/") || strings.HasSuffix(p, "/") {
		return false
	}
	for _, seg := range strings.Split(p, "/") {
		if seg == "" || seg == "." || seg == ".." {
			return false
		}
	}
	return true
}

// Mem is an in-memory FS.
type Mem struct {
	mu    sync.RWMutex
	files map[string][]byte // guarded by mu
}

// NewMem returns an empty in-memory filesystem.
func NewMem() *Mem {
	return &Mem{files: make(map[string][]byte)}
}

// WriteFile implements FS.
func (m *Mem) WriteFile(path string, data []byte) error {
	if !validPath(path) {
		return &PathError{"write", path, ErrBadPath}
	}
	cp := make([]byte, len(data))
	copy(cp, data)
	m.mu.Lock()
	defer m.mu.Unlock()
	m.files[path] = cp
	return nil
}

// ReadFile implements FS.
func (m *Mem) ReadFile(path string) ([]byte, error) {
	m.mu.RLock()
	data, ok := m.files[path]
	m.mu.RUnlock()
	if !ok {
		return nil, &PathError{"read", path, ErrNotExist}
	}
	cp := make([]byte, len(data))
	copy(cp, data)
	return cp, nil
}

// Rename implements FS.
func (m *Mem) Rename(oldPath, newPath string) error {
	if !validPath(newPath) {
		return &PathError{"rename", newPath, ErrBadPath}
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	data, ok := m.files[oldPath]
	if !ok {
		return &PathError{"rename", oldPath, ErrNotExist}
	}
	delete(m.files, oldPath)
	m.files[newPath] = data
	return nil
}

// Remove implements FS.
func (m *Mem) Remove(path string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.files[path]; !ok {
		return &PathError{"remove", path, ErrNotExist}
	}
	delete(m.files, path)
	return nil
}

// List implements FS.
func (m *Mem) List(prefix string) ([]string, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	var out []string
	//drybellvet:ordered — collection only; sorted immediately below
	for p := range m.files {
		if strings.HasPrefix(p, prefix) {
			out = append(out, p)
		}
	}
	sort.Strings(out)
	return out, nil
}

// Stat implements FS.
func (m *Mem) Stat(path string) (int64, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	data, ok := m.files[path]
	if !ok {
		return 0, &PathError{"stat", path, ErrNotExist}
	}
	return int64(len(data)), nil
}

// NumFiles returns the number of files stored. For tests and diagnostics.
func (m *Mem) NumFiles() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return len(m.files)
}

// TotalBytes returns the sum of all file sizes. For tests and diagnostics.
func (m *Mem) TotalBytes() int64 {
	m.mu.RLock()
	defer m.mu.RUnlock()
	var n int64
	//drybellvet:ordered — commutative sum, order-insensitive
	for _, d := range m.files {
		n += int64(len(d))
	}
	return n
}

// Corrupt flips one byte of the stored file at the given offset, for failure
// injection tests. It bypasses the copy-on-read discipline deliberately.
func (m *Mem) Corrupt(path string, offset int) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	data, ok := m.files[path]
	if !ok {
		return &PathError{"corrupt", path, ErrNotExist}
	}
	if offset < 0 || offset >= len(data) {
		return &PathError{"corrupt", path, fmt.Errorf("offset %d out of range [0,%d)", offset, len(data))}
	}
	data[offset] ^= 0xFF
	return nil
}
