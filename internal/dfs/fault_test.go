package dfs

import (
	"errors"
	"testing"
	"time"
)

// FaultFS must behave identically over the in-memory and disk stores; every
// test here runs against both via eachFS.

func TestFaultFSPassThrough(t *testing.T) {
	eachFS(t, func(t *testing.T, fs FS) {
		f := NewFaultFS(fs, 1)
		if err := f.WriteFile("a/b", []byte("x")); err != nil {
			t.Fatal(err)
		}
		data, err := f.ReadFile("a/b")
		if err != nil || string(data) != "x" {
			t.Fatalf("ReadFile = %q, %v", data, err)
		}
		if err := f.Rename("a/b", "a/c"); err != nil {
			t.Fatal(err)
		}
		if n, err := f.Stat("a/c"); err != nil || n != 1 {
			t.Fatalf("Stat = %d, %v", n, err)
		}
		paths, err := f.List("a/")
		if err != nil || len(paths) != 1 || paths[0] != "a/c" {
			t.Fatalf("List = %v, %v", paths, err)
		}
		if err := f.Remove("a/c"); err != nil {
			t.Fatal(err)
		}
		if f.Injected() != 0 {
			t.Errorf("transparent FaultFS injected %d faults", f.Injected())
		}
		if f.OpCount(OpWrite) != 1 || f.OpCount(OpRead) != 1 {
			t.Errorf("op counts: write=%d read=%d", f.OpCount(OpWrite), f.OpCount(OpRead))
		}
	})
}

func TestFaultFSScriptedFaults(t *testing.T) {
	eachFS(t, func(t *testing.T, fs FS) {
		f := NewFaultFS(fs, 1)
		f.FailNext(OpWrite, "victim", 2)
		// Non-matching paths are untouched.
		if err := f.WriteFile("other/file", []byte("ok")); err != nil {
			t.Fatal(err)
		}
		// The next two matching writes fail, and fail *before* any effect.
		for i := 0; i < 2; i++ {
			err := f.WriteFile("dir/victim-1", []byte("boom"))
			if !errors.Is(err, ErrInjected) {
				t.Fatalf("write %d: err = %v, want injected fault", i, err)
			}
			if _, err := f.ReadFile("dir/victim-1"); !IsNotExist(err) {
				t.Fatalf("failed write left a file behind (read err = %v)", err)
			}
		}
		// The rule is exhausted; the third write succeeds.
		if err := f.WriteFile("dir/victim-1", []byte("ok")); err != nil {
			t.Fatal(err)
		}
		if f.Injected() != 2 {
			t.Errorf("injected = %d, want 2", f.Injected())
		}
	})
}

func TestFaultFSScriptedRenameFault(t *testing.T) {
	eachFS(t, func(t *testing.T, fs FS) {
		f := NewFaultFS(fs, 1)
		if err := f.WriteFile("tmp/x.partial", []byte("data")); err != nil {
			t.Fatal(err)
		}
		f.FailNext(OpRename, "x.partial", 1)
		// Rename matches on either side of the move.
		if err := f.Rename("tmp/x.partial", "tmp/x"); !errors.Is(err, ErrInjected) {
			t.Fatalf("rename err = %v, want injected fault", err)
		}
		// The source survives an injected rename fault untouched.
		if _, err := f.Stat("tmp/x.partial"); err != nil {
			t.Fatalf("source gone after injected rename fault: %v", err)
		}
		if _, err := f.Stat("tmp/x"); !IsNotExist(err) {
			t.Fatalf("destination appeared despite injected fault (err = %v)", err)
		}
		if err := f.Rename("tmp/x.partial", "tmp/x"); err != nil {
			t.Fatal(err)
		}
	})
}

func TestFaultFSProbabilisticDeterministic(t *testing.T) {
	eachFS(t, func(t *testing.T, fs FS) {
		run := func(seed int64) []bool {
			f := NewFaultFS(fs, seed)
			f.FailProb(OpWrite, 0.5)
			outcomes := make([]bool, 40)
			for i := range outcomes {
				err := f.WriteFile("p/q", []byte("v"))
				if err != nil && !errors.Is(err, ErrInjected) {
					t.Fatalf("unexpected real error: %v", err)
				}
				outcomes[i] = err != nil
			}
			return outcomes
		}
		a, b := run(7), run(7)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("same seed diverged at op %d", i)
			}
		}
		failed := 0
		for _, x := range a {
			if x {
				failed++
			}
		}
		if failed == 0 || failed == len(a) {
			t.Errorf("p=0.5 produced %d/%d failures; injection looks broken", failed, len(a))
		}
	})
}

func TestFaultFSProbPathScoping(t *testing.T) {
	eachFS(t, func(t *testing.T, fs FS) {
		f := NewFaultFS(fs, 3)
		f.FailProbPath(OpWrite, "_attempts/", 1.0)
		if err := f.WriteFile("job/_attempts/map-00000/a0001.out", nil); !errors.Is(err, ErrInjected) {
			t.Fatalf("scoped path err = %v, want injected", err)
		}
		if err := f.WriteFile("job/output-00000-of-00001", nil); err != nil {
			t.Fatalf("out-of-scope path failed: %v", err)
		}
	})
}

func TestFaultFSLatency(t *testing.T) {
	eachFS(t, func(t *testing.T, fs FS) {
		f := NewFaultFS(fs, 1)
		f.SetLatency(20 * time.Millisecond)
		start := time.Now()
		if err := f.WriteFile("slow/file", []byte("x")); err != nil {
			t.Fatal(err)
		}
		if d := time.Since(start); d < 20*time.Millisecond {
			t.Errorf("write took %v, want >= 20ms of injected latency", d)
		}
	})
}

// PublishShard over a FaultFS: an injected rename fault aborts the commit
// with the temp file intact and no visible shard — the atomic-commit
// property the runtime's retry loop depends on.
func TestFaultFSPublishShardAtomicity(t *testing.T) {
	eachFS(t, func(t *testing.T, fs FS) {
		f := NewFaultFS(fs, 1)
		f.FailNext(OpRename, "out/data", 1)
		err := PublishShard(f, "out/data", 0, 2, []byte("payload"))
		if !errors.Is(err, ErrInjected) {
			t.Fatalf("PublishShard err = %v, want injected fault", err)
		}
		if _, err := f.Stat(ShardPath("out/data", 0, 2)); !IsNotExist(err) {
			t.Fatalf("shard visible after failed commit (err = %v)", err)
		}
		// A retry goes through cleanly.
		if err := PublishShard(f, "out/data", 0, 2, []byte("payload")); err != nil {
			t.Fatal(err)
		}
		got, err := f.ReadFile(ShardPath("out/data", 0, 2))
		if err != nil || string(got) != "payload" {
			t.Fatalf("shard after retry = %q, %v", got, err)
		}
	})
}
