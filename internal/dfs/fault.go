package dfs

import (
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"time"
)

// ErrInjected is the cause carried by every failure a FaultFS injects, so
// tests can tell injected faults from real ones.
var ErrInjected = fmt.Errorf("injected fault")

// Op names one filesystem operation class for fault injection.
type Op string

// Operation classes a FaultFS can fail.
const (
	OpWrite  Op = "write"
	OpRead   Op = "read"
	OpRename Op = "rename"
	OpRemove Op = "remove"
	OpList   Op = "list"
	OpStat   Op = "stat"
)

// FaultFS wraps an FS and injects failures and latency, deterministically
// under a seed, for the distributed-runtime tests: probabilistic faults
// model flaky cluster storage, scripted faults kill a specific operation on
// a specific path, and latency widens race windows. A fault fires before
// the wrapped operation runs, so a failed write writes nothing — the same
// all-or-nothing discipline the real FS contract promises.
type FaultFS struct {
	inner FS

	mu       sync.Mutex
	rng      *rand.Rand    // guarded by mu
	probs    []*probRule   // guarded by mu
	scripts  []*scriptRule // guarded by mu
	latency  time.Duration // guarded by mu
	injected int64         // guarded by mu
	ops      map[Op]int64  // guarded by mu
}

// scriptRule fails the next Times matching operations.
type scriptRule struct {
	op    Op
	match string // substring of the path ("" matches all)
	times int
}

// probRule fails matching operations independently with probability p.
type probRule struct {
	op    Op
	match string
	p     float64
}

// NewFaultFS wraps inner with deterministic fault injection under seed.
// With no configured faults it is a transparent pass-through.
func NewFaultFS(inner FS, seed int64) *FaultFS {
	return &FaultFS{
		inner: inner,
		rng:   rand.New(rand.NewSource(seed)),
		ops:   make(map[Op]int64),
	}
}

// FailProb makes each operation of class op fail independently with
// probability p.
func (f *FaultFS) FailProb(op Op, p float64) { f.FailProbPath(op, "", p) }

// FailProbPath is FailProb scoped to paths containing match, so tests can
// aim probabilistic faults at operations the runtime retries (e.g. attempt
// commits) without also hitting unretried writes.
func (f *FaultFS) FailProbPath(op Op, match string, p float64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.probs = append(f.probs, &probRule{op: op, match: match, p: p})
}

// FailNext scripts a fault: the next times operations of class op whose path
// contains match (empty matches any path) fail. Rules are consumed in the
// order they were added.
func (f *FaultFS) FailNext(op Op, match string, times int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.scripts = append(f.scripts, &scriptRule{op: op, match: match, times: times})
}

// SetLatency injects a fixed delay before every operation, widening the
// race windows straggler and speculation tests rely on.
func (f *FaultFS) SetLatency(d time.Duration) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.latency = d
}

// Injected returns how many faults have fired.
func (f *FaultFS) Injected() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.injected
}

// OpCount returns how many operations of the class were attempted
// (including ones that drew an injected fault).
func (f *FaultFS) OpCount(op Op) int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.ops[op]
}

// check decides one operation's fate: injected latency first, then scripted
// rules in order, then the probabilistic roll.
func (f *FaultFS) check(op Op, path string) error {
	f.mu.Lock()
	f.ops[op]++
	delay := f.latency
	var fired bool
	for _, r := range f.scripts {
		if r.times > 0 && r.op == op && strings.Contains(path, r.match) {
			r.times--
			fired = true
			break
		}
	}
	if !fired {
		for _, r := range f.probs {
			if r.op == op && strings.Contains(path, r.match) && f.rng.Float64() < r.p {
				fired = true
				break
			}
		}
	}
	if fired {
		f.injected++
	}
	f.mu.Unlock()
	if delay > 0 {
		time.Sleep(delay)
	}
	if fired {
		return &PathError{string(op), path, ErrInjected}
	}
	return nil
}

// WriteFile implements FS.
func (f *FaultFS) WriteFile(path string, data []byte) error {
	if err := f.check(OpWrite, path); err != nil {
		return err
	}
	return f.inner.WriteFile(path, data)
}

// ReadFile implements FS.
func (f *FaultFS) ReadFile(path string) ([]byte, error) {
	if err := f.check(OpRead, path); err != nil {
		return nil, err
	}
	return f.inner.ReadFile(path)
}

// Rename implements FS. Scripted rules match against either path.
func (f *FaultFS) Rename(oldPath, newPath string) error {
	if err := f.check(OpRename, oldPath+" -> "+newPath); err != nil {
		return err
	}
	return f.inner.Rename(oldPath, newPath)
}

// Remove implements FS.
func (f *FaultFS) Remove(path string) error {
	if err := f.check(OpRemove, path); err != nil {
		return err
	}
	return f.inner.Remove(path)
}

// List implements FS.
func (f *FaultFS) List(prefix string) ([]string, error) {
	if err := f.check(OpList, prefix); err != nil {
		return nil, err
	}
	return f.inner.List(prefix)
}

// Stat implements FS.
func (f *FaultFS) Stat(path string) (int64, error) {
	if err := f.check(OpStat, path); err != nil {
		return 0, err
	}
	return f.inner.Stat(path)
}
