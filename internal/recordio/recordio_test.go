package recordio

import (
	"bytes"
	"errors"
	"io"
	"testing"
	"testing/quick"
)

func TestRoundTripBasic(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	records := [][]byte{[]byte("hello"), []byte(""), []byte("world"), {0, 1, 2, 255}}
	for _, r := range records {
		if err := w.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if w.Count() != len(records) {
		t.Errorf("Count = %d, want %d", w.Count(), len(records))
	}

	r := NewReader(bytes.NewReader(buf.Bytes()))
	for i, want := range records {
		got, err := r.Next()
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("record %d = %q, want %q", i, got, want)
		}
	}
	if _, err := r.Next(); err != io.EOF {
		t.Errorf("after last record: %v, want io.EOF", err)
	}
	if r.Count() != len(records) {
		t.Errorf("reader Count = %d, want %d", r.Count(), len(records))
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(records [][]byte) bool {
		var buf bytes.Buffer
		if err := WriteAll(&buf, records); err != nil {
			return false
		}
		got, err := ReadAll(bytes.NewReader(buf.Bytes()))
		if err != nil {
			return false
		}
		if len(got) != len(records) {
			return false
		}
		for i := range got {
			if !bytes.Equal(got[i], records[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestCorruptionDetectedAtEveryByte(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteAll(&buf, [][]byte{[]byte("payload-one"), []byte("payload-two")}); err != nil {
		t.Fatal(err)
	}
	clean := buf.Bytes()
	for off := 0; off < len(clean); off++ {
		dirty := make([]byte, len(clean))
		copy(dirty, clean)
		dirty[off] ^= 0xFF
		_, err := ReadAll(bytes.NewReader(dirty))
		if err == nil {
			t.Fatalf("corruption at byte %d not detected", off)
		}
	}
}

func TestTruncationDetected(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteAll(&buf, [][]byte{[]byte("0123456789")}); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for cut := 1; cut < len(full); cut++ {
		_, err := ReadAll(bytes.NewReader(full[:cut]))
		if err == nil {
			t.Fatalf("truncation at %d/%d bytes not detected", cut, len(full))
		}
		if !errors.Is(err, ErrCorrupt) {
			t.Fatalf("truncation at %d: err = %v, want ErrCorrupt", cut, err)
		}
	}
}

func TestEmptyStream(t *testing.T) {
	got, err := ReadAll(bytes.NewReader(nil))
	if err != nil || len(got) != 0 {
		t.Errorf("ReadAll(empty) = %v, %v", got, err)
	}
}

func TestHugeLengthRejected(t *testing.T) {
	// Hand-craft a frame claiming an enormous payload.
	frame := []byte{'S', 'D', 'R', 'B', 0xFF, 0xFF, 0xFF, 0x7F, 0, 0, 0, 0}
	_, err := ReadAll(bytes.NewReader(frame))
	if !errors.Is(err, ErrTooLarge) {
		t.Errorf("err = %v, want ErrTooLarge", err)
	}
}

func TestWriterRejectsOversizeRecord(t *testing.T) {
	w := NewWriter(io.Discard)
	if err := w.Write(make([]byte, MaxRecordSize+1)); !errors.Is(err, ErrTooLarge) {
		t.Errorf("err = %v, want ErrTooLarge", err)
	}
}

func TestBadMagic(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteAll(&buf, [][]byte{[]byte("x")}); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	data[0] = 'X'
	_, err := ReadAll(bytes.NewReader(data))
	if !errors.Is(err, ErrCorrupt) {
		t.Errorf("err = %v, want ErrCorrupt", err)
	}
}

func TestBytesAccounting(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.Write(make([]byte, 100)); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if w.Bytes() != int64(buf.Len()) {
		t.Errorf("Bytes() = %d, buffer has %d", w.Bytes(), buf.Len())
	}
}
