// Package recordio implements a simple record-oriented file format used for
// all data exchanged through the simulated distributed filesystem: corpora,
// label-matrix shards, and probabilistic training labels.
//
// The format is a sequence of frames:
//
//	magic  [4]byte  "SDRB" (Snorkel DryBell)
//	length uint32   little-endian payload length
//	crc32  uint32   IEEE checksum of the payload
//	payload [length]byte
//
// Readers detect truncation and corruption and surface them as errors, which
// the MapReduce layer uses for failure-injection tests. This stands in for
// the record formats of Google's production storage stack (paper §5.1, §5.4:
// "labeling functions are independent executables that use a distributed
// filesystem to share data").
package recordio

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

var magic = [4]byte{'S', 'D', 'R', 'B'}

// Errors reported by Reader.
var (
	// ErrCorrupt indicates a frame whose checksum or header is invalid.
	ErrCorrupt = errors.New("recordio: corrupt record")
	// ErrTooLarge indicates a frame longer than MaxRecordSize.
	ErrTooLarge = errors.New("recordio: record exceeds maximum size")
)

// MaxRecordSize bounds a single record. Larger frames are rejected to avoid
// huge allocations from corrupt length headers.
const MaxRecordSize = 64 << 20 // 64 MiB

const headerSize = 12

// Writer appends records to an io.Writer.
type Writer struct {
	w     *bufio.Writer
	n     int
	bytes int64
}

// NewWriter returns a Writer emitting to w.
func NewWriter(w io.Writer) *Writer {
	return &Writer{w: bufio.NewWriter(w)}
}

// Write appends one record.
func (w *Writer) Write(payload []byte) error {
	if len(payload) > MaxRecordSize {
		return ErrTooLarge
	}
	var hdr [headerSize]byte
	copy(hdr[0:4], magic[:])
	binary.LittleEndian.PutUint32(hdr[4:8], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[8:12], crc32.ChecksumIEEE(payload))
	if _, err := w.w.Write(hdr[:]); err != nil {
		return fmt.Errorf("recordio: write header: %w", err)
	}
	if _, err := w.w.Write(payload); err != nil {
		return fmt.Errorf("recordio: write payload: %w", err)
	}
	w.n++
	w.bytes += int64(headerSize + len(payload))
	return nil
}

// Flush flushes buffered frames to the underlying writer.
func (w *Writer) Flush() error { return w.w.Flush() }

// Count returns the number of records written.
func (w *Writer) Count() int { return w.n }

// Bytes returns the total encoded size written, including headers.
func (w *Writer) Bytes() int64 { return w.bytes }

// Reader decodes records from an io.Reader.
type Reader struct {
	r *bufio.Reader
	n int
}

// NewReader returns a Reader consuming r.
func NewReader(r io.Reader) *Reader {
	return &Reader{r: bufio.NewReader(r)}
}

// Next returns the next record's payload, io.EOF at a clean end of stream,
// or an error wrapping ErrCorrupt for damaged frames. The returned slice is
// freshly allocated and owned by the caller.
func (r *Reader) Next() ([]byte, error) {
	var hdr [headerSize]byte
	if _, err := io.ReadFull(r.r, hdr[:1]); err != nil {
		if err == io.EOF {
			return nil, io.EOF // clean end
		}
		return nil, fmt.Errorf("recordio: read header: %w", err)
	}
	if _, err := io.ReadFull(r.r, hdr[1:]); err != nil {
		return nil, fmt.Errorf("recordio: truncated header after %d records: %w", r.n, errCorruptFrom(err))
	}
	if hdr[0] != magic[0] || hdr[1] != magic[1] || hdr[2] != magic[2] || hdr[3] != magic[3] {
		return nil, fmt.Errorf("recordio: bad magic %q at record %d: %w", hdr[0:4], r.n, ErrCorrupt)
	}
	length := binary.LittleEndian.Uint32(hdr[4:8])
	if length > MaxRecordSize {
		return nil, fmt.Errorf("recordio: frame length %d at record %d: %w", length, r.n, ErrTooLarge)
	}
	sum := binary.LittleEndian.Uint32(hdr[8:12])
	payload := make([]byte, length)
	if _, err := io.ReadFull(r.r, payload); err != nil {
		return nil, fmt.Errorf("recordio: truncated payload at record %d: %w", r.n, errCorruptFrom(err))
	}
	if crc32.ChecksumIEEE(payload) != sum {
		return nil, fmt.Errorf("recordio: checksum mismatch at record %d: %w", r.n, ErrCorrupt)
	}
	r.n++
	return payload, nil
}

// Count returns the number of records successfully read so far.
func (r *Reader) Count() int { return r.n }

func errCorruptFrom(err error) error {
	if err == io.EOF || err == io.ErrUnexpectedEOF {
		return ErrCorrupt
	}
	return err
}

// ReadAll decodes every record from r until EOF.
func ReadAll(r io.Reader) ([][]byte, error) {
	rd := NewReader(r)
	var out [][]byte
	for {
		rec, err := rd.Next()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, rec)
	}
}

// WriteAll encodes all records to w and flushes.
func WriteAll(w io.Writer, records [][]byte) error {
	wr := NewWriter(w)
	for _, rec := range records {
		if err := wr.Write(rec); err != nil {
			return err
		}
	}
	return wr.Flush()
}
