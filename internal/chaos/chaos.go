// Package chaos injects deterministic network faults for resilience tests.
// It complements dfs.FaultFS — which misbehaves at the filesystem seam —
// with a http.RoundTripper that misbehaves at the wire seam: requests are
// dropped (a transport error, as if the connection reset) or delayed (a
// slow network) according to a seeded schedule, so a "chaotic" run is
// exactly reproducible.
//
// Faults are injected *before* the request is sent. A dropped request never
// reaches the server, so injecting on non-idempotent operations is safe:
// the operation simply did not happen, which is indistinguishable from a
// connect failure and exactly what retry policies must tolerate.
package chaos

import (
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"sync"
	"sync/atomic"
	"time"
)

// Transport is a fault-injecting http.RoundTripper. The zero value is not
// usable; build with NewTransport. Safe for concurrent use.
type Transport struct {
	// DropRate is the probability ([0,1]) a request fails with a transport
	// error instead of being sent.
	DropRate float64
	// DelayRate is the probability ([0,1]) a request is held for Delay
	// before being sent — a slow network rather than a dead one.
	DelayRate float64
	Delay     time.Duration
	// Match, when non-nil, limits faults to matching requests; everything
	// else passes through untouched.
	Match func(*http.Request) bool

	// Dropped and Delayed count injected faults, for asserting the chaos
	// actually happened.
	Dropped atomic.Int64
	Delayed atomic.Int64

	base http.RoundTripper
	mu   sync.Mutex
	rng  *rand.Rand
}

// NewTransport wraps base (nil: http.DefaultTransport) with a fault
// schedule drawn from seed. Equal seeds misbehave identically.
func NewTransport(seed int64, base http.RoundTripper) *Transport {
	if base == nil {
		base = http.DefaultTransport
	}
	return &Transport{
		base: base,
		rng:  rand.New(rand.NewSource(seed)), // explicitly seeded: fault schedule, not data-plane
	}
}

// ErrInjected matches (errors.Is) every fault this package injects, so a
// harness can tell scheduled chaos from a real failure even through
// url.Error wrapping.
var ErrInjected = errors.New("chaos: injected fault")

// errDropped marks an injected transport failure.
type errDropped struct{ url string }

func (e *errDropped) Error() string {
	return fmt.Sprintf("chaos: injected transport fault for %s", e.url)
}

func (e *errDropped) Is(target error) bool { return target == ErrInjected }

// RoundTrip implements http.RoundTripper.
func (t *Transport) RoundTrip(req *http.Request) (*http.Response, error) {
	if t.Match != nil && !t.Match(req) {
		return t.base.RoundTrip(req)
	}
	t.mu.Lock()
	drop := t.DropRate > 0 && t.rng.Float64() < t.DropRate
	delay := !drop && t.DelayRate > 0 && t.rng.Float64() < t.DelayRate
	t.mu.Unlock()
	if drop {
		t.Dropped.Add(1)
		return nil, &errDropped{url: req.URL.String()}
	}
	if delay {
		t.Delayed.Add(1)
		timer := time.NewTimer(t.Delay)
		defer timer.Stop()
		select {
		case <-req.Context().Done():
			return nil, req.Context().Err()
		case <-timer.C:
		}
	}
	return t.base.RoundTrip(req)
}
